// Package report renders campaign result stores and benchmark logs into the
// committed, human-readable BENCHMARK.md.
//
// The output is deterministic — no timestamps, stable ordering — so rendering
// the same inputs twice reproduces the file byte for byte, which is what
// makes the report reviewable in diffs. cmd/report drives it from files; the
// campaign service's background reporter drives it from the live result
// database.
package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Row mirrors the fields of a result-store line the report uses. The store's
// result object is the simulator's Result with Go field names.
type Row struct {
	Hash   string  `json:"hash"`
	Spec   string  `json:"spec"`
	Load   float64 `json:"load"`
	Seed   uint64  `json:"seed"`
	Result struct {
		AvgLatency       float64
		CI95             float64
		BatchCI95        float64
		Batches          int
		P50, P95, P99    int64
		AcceptedLoad     float64
		Saturated        bool
		SampledDelivered int
		SampleSize       int
		Cycles           int64

		DroppedFlits        int64
		LostPackets         int64
		RetriedPackets      int64
		AbandonedPackets    int64
		UnreachablePackets  int64
		DeliveredFraction   float64
		CorruptedFlits      int64
		CrcDetected         int64
		CorruptEscapes      int64
		PhantomReservations int64
		ReclaimedSlots      int64

		ProfTicks        int64
		ProfActiveTicks  int64
		ProfIdleFraction float64
		ProfSchedWork    int64
		ProfArbWork      int64
		ProfSwitchWork   int64
		ProfCreditWork   int64

		WaterfallPackets int64
		WaterfallTotal   int64
		WaterfallQueue   int64
		WaterfallReserve int64
		WaterfallArb     int64
		WaterfallStall   int64
		WaterfallSched   int64
		WaterfallLink    int64
		WaterfallDrain   int64
	} `json:"result"`
}

// Source is one result store's rows, ready to render as a report section.
type Source struct {
	// Name labels the section header (a file path for cmd/report, the
	// database directory for the service reporter).
	Name string
	Rows []Row
	// Skipped counts undecodable lines tolerated in lenient mode.
	Skipped int
}

// MalformedError reports an undecodable store line in strict mode, carrying
// the 1-based physical line number of the offending record.
type MalformedError struct {
	Name string // store name (usually the file path)
	Line int    // 1-based line number
	Err  error  // underlying decode error, nil when the line merely lacked a hash
}

func (e *MalformedError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%s:%d: malformed record: %v", e.Name, e.Line, e.Err)
	}
	return fmt.Sprintf("%s:%d: malformed record: missing hash", e.Name, e.Line)
}

func (e *MalformedError) Unwrap() error { return e.Err }

// ReadStore loads a JSONL result store from r, keeping the last entry per
// hash (matching the store's own resume semantics) and sorting rows by spec,
// load, seed. In strict mode (lenient=false) the first undecodable line
// aborts with a *MalformedError naming its line number; in lenient mode such
// lines are counted in the returned Source's Skipped field instead.
func ReadStore(r io.Reader, name string, lenient bool) (Source, error) {
	src := Source{Name: name}
	byHash := map[string]Row{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			if !lenient {
				return src, &MalformedError{Name: name, Line: lineNo, Err: err}
			}
			src.Skipped++
			continue
		}
		if row.Hash == "" {
			if !lenient {
				return src, &MalformedError{Name: name, Line: lineNo}
			}
			src.Skipped++
			continue
		}
		if _, seen := byHash[row.Hash]; !seen {
			order = append(order, row.Hash)
		}
		byHash[row.Hash] = row
	}
	if err := sc.Err(); err != nil {
		return src, fmt.Errorf("read %s: %w", name, err)
	}
	src.Rows = make([]Row, 0, len(order))
	for _, h := range order {
		src.Rows = append(src.Rows, byHash[h])
	}
	sort.SliceStable(src.Rows, func(i, j int) bool {
		if src.Rows[i].Spec != src.Rows[j].Spec {
			return src.Rows[i].Spec < src.Rows[j].Spec
		}
		if src.Rows[i].Load != src.Rows[j].Load {
			return src.Rows[i].Load < src.Rows[j].Load
		}
		return src.Rows[i].Seed < src.Rows[j].Seed
	})
	return src, nil
}

// ReadStoreFile is ReadStore over a file path.
func ReadStoreFile(path string, lenient bool) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return Source{Name: path}, err
	}
	defer f.Close()
	return ReadStore(f, path, lenient)
}

// Bench bundles the parsed benchmark inputs for the report's benchmark
// section. A nil *Bench omits the section.
type Bench struct {
	Path         string // benchmark log path, shown in the section header
	BaselinePath string // baseline log path, "" when absent
	Latest       map[string]float64
	Order        []string
	Base         map[string]float64 // nil when no baseline
	Allocs       map[string]JSONEntry
}

// JSONEntry is one benchmark's row in scripts/bench.sh's latest.json.
type JSONEntry struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// ParseBenchFile reads `go test -bench` output, returning ns/op per
// benchmark and the order the benchmarks appeared in.
func ParseBenchFile(path string) (map[string]float64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	ns := map[string]float64{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// name iterations value ns/op [more value unit pairs...]
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if _, seen := ns[fields[0]]; !seen {
				order = append(order, fields[0])
			}
			ns[fields[0]] = v
			break
		}
	}
	return ns, order, sc.Err()
}

// ParseBenchJSONFile reads scripts/bench.sh's machine-readable summary.
func ParseBenchJSONFile(path string) (map[string]JSONEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]JSONEntry
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return m, nil
}

// Render produces the full report: the fixed preamble, one section per
// source, and the benchmark section when bench is non-nil.
func Render(sources []Source, bench *Bench) []byte {
	var b bytes.Buffer
	b.WriteString("# Benchmark Report\n\n")
	b.WriteString("Auto-generated by `cmd/report` from the committed campaign stores and\n")
	b.WriteString("benchmark logs; do not edit by hand. Regenerate with:\n\n")
	b.WriteString("    go run ./cmd/report -bench benchmarks/latest.txt -baseline benchmarks/baseline.txt \\\n")
	b.WriteString("        -bench-json benchmarks/latest.json -out BENCHMARK.md benchmarks/campaign.jsonl\n\n")
	b.WriteString("Units: latency in cycles; offered and accepted loads as a percentage of\n")
	b.WriteString("network capacity; the CI column is the 95% batch-means half-width when\n")
	b.WriteString("the sample batched, else the i.i.d. interval.\n")
	for _, src := range sources {
		writeStoreSection(&b, src)
	}
	if bench != nil {
		writeBenchSection(&b, bench)
	}
	return b.Bytes()
}

func writeStoreSection(b *bytes.Buffer, src Source) {
	fmt.Fprintf(b, "\n## Campaign results — %s\n\n", src.Name)
	if len(src.Rows) == 0 {
		b.WriteString("No decodable result rows.\n")
		return
	}
	fmt.Fprintf(b, "%d points", len(src.Rows))
	if src.Skipped > 0 {
		fmt.Fprintf(b, " (%d undecodable lines skipped)", src.Skipped)
	}
	b.WriteString(".\n\n")

	b.WriteString("| Config | Load %cap | Latency | 95% CI ± | Accepted %cap | P99 | Delivered | Saturated |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|:---:|\n")
	for _, r := range src.Rows {
		ci := r.Result.CI95
		if r.Result.Batches > 0 {
			ci = r.Result.BatchCI95
		}
		sat := ""
		if r.Result.Saturated {
			sat = "yes"
		}
		fmt.Fprintf(b, "| %s | %.1f | %.2f | %.2f | %.1f | %d | %d/%d | %s |\n",
			r.Spec, r.Load*100, r.Result.AvgLatency, ci,
			r.Result.AcceptedLoad*100, r.Result.P99,
			r.Result.SampledDelivered, r.Result.SampleSize, sat)
	}

	writeFaultSubsection(b, src.Rows)
	writeProfileSubsection(b, src.Rows)
	writeWaterfallSubsection(b, src.Rows)
}

// writeFaultSubsection adds the fault/chaos delivery table when any row
// carried fault, retry or corruption activity. A healthy campaign — full
// delivery, nothing dropped or retried — keeps the report clean.
func writeFaultSubsection(b *bytes.Buffer, rows []Row) {
	any := false
	for _, r := range rows {
		res := r.Result
		if res.DroppedFlits > 0 || res.UnreachablePackets > 0 || res.RetriedPackets > 0 ||
			res.AbandonedPackets > 0 || res.CorruptedFlits > 0 ||
			(res.DeliveredFraction > 0 && res.DeliveredFraction < 1) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString("\n### Fault and integrity delivery\n\n")
	b.WriteString("| Config | Load %cap | Delivered % | Unreachable | Dropped | Retried | Abandoned | Corrupted | CRC caught | Escapes |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range rows {
		res := r.Result
		delivered := res.DeliveredFraction * 100
		fmt.Fprintf(b, "| %s | %.1f | %.1f | %d | %d | %d | %d | %d | %d | %d |\n",
			r.Spec, r.Load*100, delivered, res.UnreachablePackets, res.DroppedFlits,
			res.RetriedPackets, res.AbandonedPackets,
			res.CorruptedFlits, res.CrcDetected, res.CorruptEscapes)
	}
}

// writeProfileSubsection summarizes the self-profiling activity accounting of
// rows that carried it (campaigns run with profiling armed).
func writeProfileSubsection(b *bytes.Buffer, rows []Row) {
	var ticks, active, sched, arb, sw, cred int64
	profiled := 0
	for _, r := range rows {
		if r.Result.ProfTicks == 0 {
			continue
		}
		profiled++
		ticks += r.Result.ProfTicks
		active += r.Result.ProfActiveTicks
		sched += r.Result.ProfSchedWork
		arb += r.Result.ProfArbWork
		sw += r.Result.ProfSwitchWork
		cred += r.Result.ProfCreditWork
	}
	if profiled == 0 {
		return
	}
	b.WriteString("\n### Self-profiling (simulator activity accounting)\n\n")
	fmt.Fprintf(b, "%d of %d points carried activity accounting.\n\n", profiled, len(rows))
	idle := 1 - float64(active)/float64(ticks)
	fmt.Fprintf(b, "- Idle component ticks: %.1f%% (%d active of %d total).\n",
		idle*100, active, ticks)
	if work := sched + arb + sw + cred; work > 0 {
		fmt.Fprintf(b, "- FR-router phase work: sched %.1f%%, arb %.1f%%, switch %.1f%%, credit %.1f%% of %d attributed work items.\n",
			pct(sched, work), pct(arb, work), pct(sw, work), pct(cred, work), work)
	}
}

// writeWaterfallSubsection renders the "where the cycles go" table: one row
// per point that carried latency provenance, mean cycles per stage, exactly
// partitioning the decomposed mean latency.
func writeWaterfallSubsection(b *bytes.Buffer, rows []Row) {
	any := false
	for _, r := range rows {
		if r.Result.WaterfallPackets > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString("\n### Where the cycles go (latency waterfall)\n\n")
	b.WriteString("Mean cycles per packet attributed to each lifecycle stage; the stages sum\n")
	b.WriteString("exactly to the decomposed mean latency.\n\n")
	b.WriteString("| Config | Load %cap | Queue | Reserve | Arb | Stall | Sched | Link | Drain | Total |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range rows {
		res := r.Result
		if res.WaterfallPackets == 0 {
			continue
		}
		n := float64(res.WaterfallPackets)
		fmt.Fprintf(b, "| %s | %.1f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
			r.Spec, r.Load*100,
			float64(res.WaterfallQueue)/n, float64(res.WaterfallReserve)/n,
			float64(res.WaterfallArb)/n, float64(res.WaterfallStall)/n,
			float64(res.WaterfallSched)/n, float64(res.WaterfallLink)/n,
			float64(res.WaterfallDrain)/n, float64(res.WaterfallTotal)/n)
	}
}

func pct(part, whole int64) float64 { return float64(part) * 100 / float64(whole) }

func writeBenchSection(b *bytes.Buffer, bench *Bench) {
	fmt.Fprintf(b, "\n## Benchmarks — %s", bench.Path)
	if bench.BaselinePath != "" {
		fmt.Fprintf(b, " vs %s", bench.BaselinePath)
	}
	b.WriteString("\n\n")
	if len(bench.Order) == 0 {
		b.WriteString("No benchmark lines found.\n")
		return
	}
	hasAllocs := len(bench.Allocs) > 0
	header := "| Benchmark | ns/op |"
	rule := "|---|---:|"
	if bench.Base != nil {
		header = "| Benchmark | Baseline ns/op | Latest ns/op | Δ |"
		rule = "|---|---:|---:|---:|"
	}
	if hasAllocs {
		header += " B/op | Allocs/op |"
		rule += "---:|---:|"
	}
	b.WriteString(header + "\n" + rule + "\n")
	for _, name := range bench.Order {
		if bench.Base != nil {
			bv, ok := bench.Base[name]
			if ok && bv > 0 {
				delta := (bench.Latest[name] - bv) * 100 / bv
				fmt.Fprintf(b, "| %s | %.0f | %.0f | %+.1f%% |", name, bv, bench.Latest[name], delta)
			} else {
				fmt.Fprintf(b, "| %s | — | %.0f | — |", name, bench.Latest[name])
			}
		} else {
			fmt.Fprintf(b, "| %s | %.0f |", name, bench.Latest[name])
		}
		if hasAllocs {
			if e, ok := bench.Allocs[name]; ok {
				fmt.Fprintf(b, " %.0f | %.0f |", e.BytesPerOp, e.AllocsPerOp)
			} else {
				fmt.Fprintf(b, " — | — |")
			}
		}
		b.WriteString("\n")
	}
}
