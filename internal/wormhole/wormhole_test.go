package wormhole

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/vcrouter"
)

func drive(t *testing.T, net noc.Network, packets int, seed uint64) map[noc.PacketID]sim.Cycle {
	t.Helper()
	delivered := map[noc.PacketID]sim.Cycle{}
	rng := sim.NewRNG(seed)
	mesh := topology.NewMesh(4)
	now := sim.Cycle(0)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 4, CreatedAt: now})
		for j := 0; j < 5; j++ {
			net.Tick(now)
			now++
		}
	}
	for net.InFlightPackets() > 0 && now < 300000 {
		net.Tick(now)
		now++
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Fatalf("%d packets undelivered", got)
	}
	return delivered
}

func TestWormholeDeliversEverything(t *testing.T) {
	mesh := topology.NewMesh(4)
	hooks := &noc.Hooks{}
	net := New(mesh, Config{BufferDepth: 8, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 3, hooks)
	drive(t, net, 200, 9)
}

// TestWormholeEquivalence: wormhole flow control is by construction a
// single-VC virtual-channel network; the two must behave identically for
// identical seeds.
func TestWormholeEquivalence(t *testing.T) {
	mesh := topology.NewMesh(4)
	deliveredA := map[noc.PacketID]sim.Cycle{}
	hooksA := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { deliveredA[p.ID] = now }}
	wh := New(mesh, Config{BufferDepth: 8, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 5, hooksA)

	deliveredB := map[noc.PacketID]sim.Cycle{}
	hooksB := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { deliveredB[p.ID] = now }}
	vc := vcrouter.New(mesh, vcrouter.Config{NumVCs: 1, BufPerVC: 8, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 5, hooksB)

	for _, net := range []noc.Network{wh, vc} {
		rng := sim.NewRNG(31)
		now := sim.Cycle(0)
		for i := 0; i < 150; i++ {
			src := topology.NodeID(rng.Intn(mesh.N()))
			dst := topology.NodeID(rng.Intn(mesh.N() - 1))
			if dst >= src {
				dst++
			}
			net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 4, CreatedAt: now})
			for j := 0; j < 5; j++ {
				net.Tick(now)
				now++
			}
		}
		for net.InFlightPackets() > 0 && now < 300000 {
			net.Tick(now)
			now++
		}
	}
	if len(deliveredA) != 150 || len(deliveredB) != 150 {
		t.Fatalf("deliveries: wormhole %d, vc(1) %d; want 150 each", len(deliveredA), len(deliveredB))
	}
	for id, ca := range deliveredA {
		if cb := deliveredB[id]; ca != cb {
			t.Fatalf("packet %d delivered at %d by wormhole but %d by vc(1)", id, ca, cb)
		}
	}
}

// TestWormholeLowerThroughputThanVC verifies the motivation for virtual
// channels ([Dally92], reviewed in the paper's Section 2): when a wormhole
// packet blocks, every channel it holds idles, so under saturating offered
// load a wormhole network accepts fewer flits than a virtual-channel network
// with the same total buffering.
func TestWormholeLowerThroughputThanVC(t *testing.T) {
	mesh := topology.NewMesh(8)
	accepted := func(build func(hooks *noc.Hooks) noc.Network) int64 {
		var flits int64
		const window = 6000
		hooks := &noc.Hooks{FlitEjected: func(now sim.Cycle) {
			if now >= 2000 && now < window {
				flits++
			}
		}}
		net := build(hooks)
		rng := sim.NewRNG(71)
		for now := sim.Cycle(0); now < window; now++ {
			for id := 0; id < mesh.N(); id++ {
				if rng.Bool(0.09) { // 0.45 flits/node/cycle offered, ~90% of capacity
					dst := topology.NodeID(rng.Intn(mesh.N() - 1))
					if dst >= topology.NodeID(id) {
						dst++
					}
					net.Offer(&noc.Packet{ID: noc.PacketID(now*64 + sim.Cycle(id)), Src: topology.NodeID(id), Dst: dst, Len: 5, CreatedAt: now})
				}
			}
			net.Tick(now)
		}
		return flits
	}
	wh := accepted(func(h *noc.Hooks) noc.Network {
		return New(mesh, Config{BufferDepth: 16, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 2, h)
	})
	vc := accepted(func(h *noc.Hooks) noc.Network {
		return vcrouter.New(mesh, vcrouter.Config{NumVCs: 2, BufPerVC: 8, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 2, h)
	})
	if wh >= vc {
		t.Errorf("wormhole accepted %d flits vs VC %d under saturating load; virtual channels should win", wh, vc)
	}
}
