// Package wormhole implements wormhole flow control [DalSei86], the
// pre-virtual-channel baseline of the paper's related-work comparison.
// Wormhole flow control allocates buffers and bandwidth in flit-sized units
// but holds a physical channel for the whole duration of a packet: when a
// packet blocks, every channel it holds idles.
//
// Structurally, wormhole flow control is virtual-channel flow control with a
// single virtual channel per physical channel (one flit queue, channel held
// head to tail), so this package configures the vcrouter implementation with
// NumVCs=1 rather than duplicating the router pipeline. The dedicated tests
// verify the equivalence properties that make that reduction valid.
package wormhole

import (
	"frfc/internal/noc"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/vcrouter"
)

// Config selects a wormhole network configuration.
type Config struct {
	// BufferDepth is the flit queue depth per input channel.
	BufferDepth int
	// LinkLatency is the data-wire delay between adjacent routers.
	LinkLatency sim.Cycle
	// CreditLatency is the credit-wire delay.
	CreditLatency sim.Cycle
	// LocalLatency is the injection/ejection link delay.
	LocalLatency sim.Cycle
	// Routing selects the route function; nil means XY.
	Routing routing.Algorithm
}

// New assembles a wormhole network over the given mesh.
func New(mesh topology.Mesh, cfg Config, seed uint64, hooks *noc.Hooks) noc.Network {
	if cfg.BufferDepth == 0 {
		cfg.BufferDepth = 8
	}
	return vcrouter.New(mesh, vcrouter.Config{
		NumVCs:        1,
		BufPerVC:      cfg.BufferDepth,
		LinkLatency:   cfg.LinkLatency,
		CreditLatency: cfg.CreditLatency,
		LocalLatency:  cfg.LocalLatency,
		Routing:       cfg.Routing,
	}, seed, hooks)
}
