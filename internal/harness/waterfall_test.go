package harness

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"frfc/internal/experiment"
	"frfc/internal/waterfall"
)

// TestWaterfallParallelEqualsSerial extends the determinism contract to
// latency-provenance campaigns: with Options.Waterfall set, every worker
// count must produce bit-identical Results — including the Waterfall* stage
// summary — and the shared fields must match a plain run exactly.
func TestWaterfallParallelEqualsSerial(t *testing.T) {
	specs := []experiment.Spec{tinySpec(), tinyVC()}
	loads := []float64{0.2, 0.4}
	var jobs []Job
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, Job{Spec: s, Load: l})
		}
	}

	serial, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Waterfall: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range serial {
		if jr.Err != "" {
			t.Fatalf("serial job %d failed: %s", i, jr.Err)
		}
		r := jr.Result
		if r.WaterfallPackets == 0 || r.WaterfallTotal == 0 {
			t.Errorf("job %d: waterfall run decomposed nothing: packets=%d total=%d",
				i, r.WaterfallPackets, r.WaterfallTotal)
		}
		sum := r.WaterfallQueue + r.WaterfallReserve + r.WaterfallArb +
			r.WaterfallStall + r.WaterfallSched + r.WaterfallLink + r.WaterfallDrain
		if sum != r.WaterfallTotal {
			t.Errorf("job %d: stage sum %d != total %d", i, sum, r.WaterfallTotal)
		}
	}

	parallel, err := RunJobs(context.Background(), jobs, Options{Workers: 4, Waterfall: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if parallel[i].Err != "" {
			t.Fatalf("parallel job %d failed: %s", i, parallel[i].Err)
		}
		if !reflect.DeepEqual(parallel[i].Result, serial[i].Result) {
			t.Errorf("job %d diverged between 1 and 4 workers:\n1w: %+v\n4w: %+v",
				i, serial[i].Result, parallel[i].Result)
		}
	}

	// Latency provenance is observation-only: strip the Waterfall* fields
	// and the rest of the Result must be bit-identical to a plain campaign.
	plain, err := RunJobs(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		stripped := serial[i].Result
		stripped.WaterfallPackets, stripped.WaterfallTotal = 0, 0
		stripped.WaterfallQueue, stripped.WaterfallReserve, stripped.WaterfallArb = 0, 0, 0
		stripped.WaterfallStall, stripped.WaterfallSched, stripped.WaterfallLink = 0, 0, 0
		stripped.WaterfallDrain = 0
		if !reflect.DeepEqual(stripped, plain[i].Result) {
			t.Errorf("job %d: waterfall result (Waterfall* stripped) diverged from plain:\nwaterfall: %+v\nplain:     %+v",
				i, stripped, plain[i].Result)
		}
	}
}

// TestCollectWaterfallHandover: CollectWaterfall must receive one ledger per
// simulated job, each consistent with that job's Result summary.
func TestCollectWaterfallHandover(t *testing.T) {
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.3},
		{Spec: tinyVC(), Load: 0.3},
	}
	var mu sync.Mutex
	got := map[string]*waterfall.Ledger{}
	o := Options{
		Workers: 2,
		CollectWaterfall: func(j Job, l *waterfall.Ledger) {
			mu.Lock()
			got[j.Hash()] = l
			mu.Unlock()
		},
	}
	results, err := RunJobs(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("collected %d ledgers, want %d", len(got), len(jobs))
	}
	for i, jr := range results {
		if jr.Err != "" {
			t.Fatalf("job %d failed: %s", i, jr.Err)
		}
		l := got[jr.Hash]
		if l == nil {
			t.Fatalf("job %d: no ledger handed over", i)
		}
		if l.Packets() != jr.Result.WaterfallPackets || l.TotalCycles() != jr.Result.WaterfallTotal {
			t.Errorf("job %d: ledger (%d pkts, %d cycles) disagrees with Result (%d, %d)",
				i, l.Packets(), l.TotalCycles(), jr.Result.WaterfallPackets, jr.Result.WaterfallTotal)
		}
	}
}
