package harness

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"frfc/internal/metrics"
)

// TestCallbacksAndCollect: the live-status hooks must fire for every job, the
// collector must hand over a populated registry per simulated job, and none of
// it may perturb results — the campaign stays bit-identical to a bare one.
func TestCallbacksAndCollect(t *testing.T) {
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 0.4},
		{Spec: tinyVC(), Load: 0.2},
	}
	bare, err := RunJobs(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatalf("bare campaign: %v", err)
	}

	var mu sync.Mutex
	var started, finished, collected int
	var ejected int64
	got, err := RunJobs(context.Background(), jobs, Options{
		Workers:    2,
		JobStarted: func(Job) { mu.Lock(); started++; mu.Unlock() },
		JobFinished: func(jr JobResult) {
			mu.Lock()
			finished++
			mu.Unlock()
			if jr.Err != "" {
				t.Errorf("job failed: %s", jr.Err)
			}
		},
		Collect: func(j Job, reg *metrics.Registry) {
			mu.Lock()
			defer mu.Unlock()
			collected++
			if reg == nil {
				t.Error("collector handed a nil registry")
				return
			}
			for i := range reg.Nodes {
				ejected += reg.Nodes[i].Ejected
			}
		},
	})
	if err != nil {
		t.Fatalf("instrumented campaign: %v", err)
	}
	if started != len(jobs) || finished != len(jobs) || collected != len(jobs) {
		t.Fatalf("hooks fired started=%d finished=%d collected=%d, want %d each",
			started, finished, collected, len(jobs))
	}
	if ejected == 0 {
		t.Fatal("collected registries recorded no traffic")
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Result, bare[i].Result) {
			t.Errorf("job %d result changed under instrumentation:\nbare: %+v\ninstr: %+v",
				i, bare[i].Result, got[i].Result)
		}
	}
}

// TestCachedJobsSkipStartAndCollect: store hits resolve without simulating, so
// they must not fire JobStarted or Collect — but JobFinished still reports
// them, flagged Cached, so status displays count them.
func TestCachedJobsSkipStartAndCollect(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	jobs := []Job{{Spec: tinySpec(), Load: 0.2}}
	if _, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Store: store}); err != nil {
		t.Fatal(err)
	}

	var started, collected, cachedFinished int
	got, err := RunJobs(context.Background(), jobs, Options{
		Workers:    1,
		Store:      store,
		JobStarted: func(Job) { started++ },
		Collect:    func(Job, *metrics.Registry) { collected++ },
		JobFinished: func(jr JobResult) {
			if jr.Cached {
				cachedFinished++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Cached {
		t.Fatal("second run did not hit the store")
	}
	if started != 0 || collected != 0 || cachedFinished != 1 {
		t.Fatalf("cached job fired started=%d collected=%d cachedFinished=%d, want 0,0,1",
			started, collected, cachedFinished)
	}
}
