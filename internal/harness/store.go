package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"frfc/internal/experiment"
)

// ResultStore is the cache a campaign consults before running a job and
// appends to after each success. Get reports whether the hash resolved; Put
// must be durable before it returns. Implementations must be safe for
// concurrent use from worker goroutines. *Store is the single-file
// implementation; internal/service's segmented database is another.
type ResultStore interface {
	Get(hash string) (experiment.Result, bool)
	Put(j Job, hash string, r experiment.Result) error
}

// storeEntry is one JSONL line of the result store. Spec, Load and Seed are
// recorded for human inspection and downstream tooling; only Hash keys
// lookups.
type storeEntry struct {
	Hash string            `json:"hash"`
	Spec string            `json:"spec"`
	Load float64           `json:"load"`
	Seed uint64            `json:"seed,omitempty"`
	Res  experiment.Result `json:"result"`
}

// MarshalEntry renders the canonical JSONL store line (no trailing newline)
// for one completed job. Every store implementation writes lines through it,
// so a result serialized by the service database is byte-identical to the
// same result serialized by a one-shot campaign store — the property the
// byte-identity smoke tests compare across layers.
func MarshalEntry(j Job, hash string, r experiment.Result) ([]byte, error) {
	line, err := json.Marshal(storeEntry{
		Hash: hash, Spec: j.EffectiveSpec().Name, Load: j.Load, Seed: j.Seed, Res: r,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: encode result: %w", err)
	}
	return line, nil
}

// Store is an append-only JSONL result cache keyed by job content hash. It is
// safe for concurrent use; every Put is flushed before it returns, so a
// killed campaign loses at most the jobs in flight. Opening tolerates a
// truncated final line (the footprint of a kill mid-write): complete lines
// load, the partial line is ignored and simply re-run.
type Store struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]experiment.Result
	skipped int
}

// OpenStore opens (creating if absent) the JSONL store at path and loads
// every decodable line. Undecodable lines — a truncated tail from a killed
// run, or foreign junk — are counted in Skipped and otherwise ignored.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: open store: %w", err)
	}
	s := &Store{f: f, entries: make(map[string]experiment.Result)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e storeEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Hash == "" {
			s.skipped++
			continue
		}
		s.entries[e.Hash] = e.Res
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: read store: %w", err)
	}
	// Append after whatever was read, including any partial tail; a
	// leading newline guard on the next Put would complicate the format,
	// so instead complete the file to a line boundary now.
	if off, err := f.Seek(0, 2); err == nil && off > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, off-1); err == nil && buf[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	return s, nil
}

// Get returns the cached result for a job hash.
func (s *Store) Get(hash string) (experiment.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.entries[hash]
	return r, ok
}

// Put records a completed job, appending one JSONL line and syncing it.
func (s *Store) Put(j Job, hash string, r experiment.Result) error {
	line, err := MarshalEntry(j, hash, r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("harness: append result: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("harness: sync store: %w", err)
	}
	s.entries[hash] = r
	return nil
}

// Len reports how many results the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Skipped reports how many undecodable lines OpenStore ignored.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Close closes the underlying file. Further Puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
