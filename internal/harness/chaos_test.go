package harness

import (
	"context"
	"reflect"
	"testing"

	"frfc/internal/experiment"
)

// TestChaosSoakSerialVsParallel is the chaos soak: seeded campaigns over a
// short horizon with the per-cycle invariant checker armed — credit
// conservation and reservation-table consistency panic the run if violated,
// and each cell drains to zero in-flight packets before reporting, so a
// leaked reservation slot cannot hide. The parallel sweep must reproduce the
// serial one bit for bit, and moderate intensity must lose nothing.
func TestChaosSoakSerialVsParallel(t *testing.T) {
	o := experiment.ChaosSweepOptions{
		Packets:     250,
		Intensities: []float64{0.25, 0.6, 1.0},
		Check:       true,
	}
	serial := experiment.ChaosSweep(o)
	parallel, err := ChaosSweep(context.Background(), o, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel chaos sweep diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for _, p := range serial {
		if p.Wedged {
			t.Errorf("intensity=%g: watchdog fired", p.Intensity)
		}
		if p.Delivered+p.Abandoned+p.Unreachable != p.Offered {
			t.Errorf("intensity=%g: packet fates don't conserve: %+v", p.Intensity, p)
		}
		if p.Abandoned != 0 {
			t.Errorf("intensity=%g: %d packets abandoned under the default retry budget", p.Intensity, p.Abandoned)
		}
		if p.Intensity < 0.75 {
			if p.DeliveredFraction() != 1.0 {
				t.Errorf("intensity=%g (no router kills) lost traffic: delivered %d of %d",
					p.Intensity, p.Delivered, p.Offered)
			}
		} else if p.DeliveredFraction() < 0.95 {
			t.Errorf("intensity=%g delivered only %.1f%%", p.Intensity, p.DeliveredFraction()*100)
		}
	}
}

// TestIntegritySweepParallelMatchesSerial: the bit-error grid fanned over
// workers must reproduce the serial sweep exactly, in the same cell order.
func TestIntegritySweepParallelMatchesSerial(t *testing.T) {
	o := experiment.IntegritySweepOptions{Packets: 80, BERs: []float64{0, 5e-3}, Check: true}
	serial := experiment.IntegritySweep(o)
	parallel, err := IntegritySweep(context.Background(), o, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel integrity sweep diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestChaosJobsHashStably: chaos fields ride the spec, so identical chaos
// jobs hit the result cache and different intensities or seeds do not.
func TestChaosJobsHashStably(t *testing.T) {
	s := tinySpec()
	s.Name = "FR6-chaos"
	s.ChaosIntensity = 0.4
	s.ChaosHorizon = 1500
	s.ChaosSeed = 9
	h1 := Job{Spec: s, Load: 0.2}.Hash()
	h2 := Job{Spec: s, Load: 0.2}.Hash()
	if h1 != h2 {
		t.Fatal("identical chaos jobs hashed differently")
	}
	s2 := s
	s2.ChaosSeed = 10
	if h3 := (Job{Spec: s2, Load: 0.2}.Hash()); h3 == h1 {
		t.Fatal("different chaos seeds collided — the seed is not in the job hash")
	}
}
