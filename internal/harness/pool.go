package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// Outcome is one item's result from a pool map: a value, an error, or a
// captured panic (Err is set for panics too, with the stack in Stack).
type Outcome[R any] struct {
	Value    R
	Err      error
	Panicked bool
	Stack    string
}

// mapPool runs fn over items on a fixed pool of workers and returns outcomes
// in item order — completion order never shows. A panic in fn becomes that
// item's Outcome (Panicked, stack captured); the other items are unaffected.
// When ctx is cancelled, items not yet started fail with ctx.Err() and the
// call returns once in-flight items finish.
func mapPool[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) []Outcome[R] {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]Outcome[R], len(items))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = runIsolated(ctx, i, items[i], fn)
			}
		}()
	}
	for i := range items {
		if err := ctx.Err(); err != nil {
			out[i] = Outcome[R]{Err: err}
			continue
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// runIsolated executes fn for one item with panic capture.
func runIsolated[T, R any](ctx context.Context, i int, item T, fn func(ctx context.Context, i int, item T) (R, error)) (o Outcome[R]) {
	defer func() {
		if r := recover(); r != nil {
			o.Panicked = true
			o.Stack = string(debug.Stack())
			o.Err = fmt.Errorf("panic: %v", r)
		}
	}()
	o.Value, o.Err = fn(ctx, i, item)
	return o
}
