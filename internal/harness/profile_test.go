package harness

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"frfc/internal/experiment"
	"frfc/internal/profile"
)

// TestProfiledParallelEqualsSerial extends the determinism contract to
// profiled campaigns: with Options.Profile set, every worker count must
// produce bit-identical Results — including the Prof* summary fields — and
// the shared fields must match an unprofiled run exactly.
func TestProfiledParallelEqualsSerial(t *testing.T) {
	specs := []experiment.Spec{tinySpec(), tinyVC()}
	loads := []float64{0.2, 0.4}
	var jobs []Job
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, Job{Spec: s, Load: l})
		}
	}

	serial, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range serial {
		if jr.Err != "" {
			t.Fatalf("serial job %d failed: %s", i, jr.Err)
		}
		if jr.Result.ProfTicks == 0 || jr.Result.ProfActiveTicks == 0 {
			t.Errorf("job %d: profiled run reported no activity: ticks=%d active=%d",
				i, jr.Result.ProfTicks, jr.Result.ProfActiveTicks)
		}
		if f := jr.Result.ProfIdleFraction; f <= 0 || f >= 1 {
			t.Errorf("job %d: idle fraction %v out of (0,1)", i, f)
		}
	}

	parallel, err := RunJobs(context.Background(), jobs, Options{Workers: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if parallel[i].Err != "" {
			t.Fatalf("parallel job %d failed: %s", i, parallel[i].Err)
		}
		if !reflect.DeepEqual(parallel[i].Result, serial[i].Result) {
			t.Errorf("job %d diverged between 1 and 4 workers:\n1w: %+v\n4w: %+v",
				i, serial[i].Result, parallel[i].Result)
		}
	}

	// Profiling is observation-only: strip the Prof* fields and the rest of
	// the Result must be bit-identical to an unprofiled campaign.
	plain, err := RunJobs(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		stripped := serial[i].Result
		stripped.ProfTicks, stripped.ProfActiveTicks = 0, 0
		stripped.ProfIdleFraction = 0
		stripped.ProfSchedWork, stripped.ProfArbWork = 0, 0
		stripped.ProfSwitchWork, stripped.ProfCreditWork = 0, 0
		if !reflect.DeepEqual(stripped, plain[i].Result) {
			t.Errorf("job %d: profiled result (Prof* stripped) diverged from unprofiled:\nprofiled:   %+v\nunprofiled: %+v",
				i, stripped, plain[i].Result)
		}
	}
}

// TestCollectProfileHandover: CollectProfile must receive one registry per
// simulated job, each consistent with that job's Result summary.
func TestCollectProfileHandover(t *testing.T) {
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.3},
		{Spec: tinyVC(), Load: 0.3},
	}
	var mu sync.Mutex
	got := map[string]*profile.Registry{}
	o := Options{
		Workers: 2,
		CollectProfile: func(j Job, p *profile.Registry) {
			mu.Lock()
			got[j.Hash()] = p
			mu.Unlock()
		},
	}
	results, err := RunJobs(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("collected %d profile registries, want %d", len(got), len(jobs))
	}
	for i, jr := range results {
		if jr.Err != "" {
			t.Fatalf("job %d failed: %s", i, jr.Err)
		}
		p := got[jr.Hash]
		if p == nil {
			t.Fatalf("job %d: no profile registry handed over", i)
		}
		ticks, active := p.Totals()
		if ticks != jr.Result.ProfTicks || active != jr.Result.ProfActiveTicks {
			t.Errorf("job %d: registry totals (%d, %d) disagree with Result summary (%d, %d)",
				i, ticks, active, jr.Result.ProfTicks, jr.Result.ProfActiveTicks)
		}
		if p.Cycles == 0 {
			t.Errorf("job %d: registry Cycles not stamped", i)
		}
	}
}
