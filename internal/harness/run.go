package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/metrics"
	"frfc/internal/profile"
	"frfc/internal/waterfall"
)

// RunJobs executes the jobs on the worker pool and returns one JobResult per
// job, in job order. Failed jobs (panic, timeout, cancellation) are reported
// in their JobResult without disturbing their siblings; the returned error is
// non-nil only when the campaign's own context ended, in which case results
// for unstarted jobs carry that error too.
func RunJobs(ctx context.Context, jobs []Job, o Options) ([]JobResult, error) {
	tr := newTracker(len(jobs), o.workers(), o.Progress)
	outs := mapPool(ctx, o.workers(), jobs, func(ctx context.Context, i int, j Job) (JobResult, error) {
		return execJob(ctx, j, o, tr), nil
	})
	results := make([]JobResult, len(jobs))
	for i, out := range outs {
		if out.Err != nil {
			// Only jobs never started (campaign cancelled) or a
			// harness-internal panic land here; job panics are
			// captured inside execJob.
			jr := JobResult{Job: jobs[i], Err: out.Err.Error(), Panicked: out.Panicked}
			tr.finish(&jr)
			if o.JobFinished != nil {
				o.JobFinished(jr)
			}
			results[i] = jr
			continue
		}
		results[i] = out.Value
	}
	return results, ctx.Err()
}

// ExecOne resolves a single job through exactly the path RunJobs uses —
// store lookup, isolated timeout-bounded simulation, store write-back — but
// without a campaign tracker, so an external scheduler (internal/service)
// can multiplex jobs from many campaigns over its own worker pool while
// keeping the per-job semantics (dedup, panic capture, cooperative
// cancellation) identical to a one-shot campaign.
func ExecOne(ctx context.Context, j Job, o Options) JobResult {
	return execJob(ctx, j, o, nil)
}

// execJob resolves one job: store lookup, then an isolated, timeout-bounded
// simulation, then store write-back. It never panics and always notifies the
// tracker exactly once.
func execJob(ctx context.Context, j Job, o Options, tr *tracker) JobResult {
	jr := JobResult{Job: j, Hash: j.Hash()}
	defer func() {
		tr.finish(&jr)
		if o.JobFinished != nil {
			o.JobFinished(jr)
		}
	}()

	if o.Store != nil {
		if r, ok := o.Store.Get(jr.Hash); ok {
			jr.Result = r
			jr.Cached = true
			return jr
		}
	}

	runCtx := ctx
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	if o.JobStarted != nil {
		o.JobStarted(j)
	}
	start := time.Now()
	res, panicked, stack, err := runJobIsolated(runCtx, j, o)
	jr.Elapsed = time.Since(start)
	if err != nil {
		jr.Err = err.Error()
		jr.Panicked = panicked
		if panicked {
			jr.Err += "\n" + stack
		}
		return jr
	}
	jr.Result = res
	if o.Store != nil {
		if perr := o.Store.Put(j, jr.Hash, res); perr != nil {
			// The result is still good; surface the store failure
			// without discarding it.
			jr.Err = perr.Error()
		}
	}
	return jr
}

// runJobIsolated runs the simulation with panic capture, so a bug tripped by
// one parameter point becomes that point's failure rather than a crashed
// campaign. When a collector or the self-profiler is armed the run is probed
// and the registries handed over on success — observation only, results
// unchanged (profiling adds only the deterministic Prof* summary fields).
func runJobIsolated(ctx context.Context, j Job, o Options) (res experiment.Result, panicked bool, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			stack = string(debug.Stack())
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	profiled := o.Profile || o.CollectProfile != nil
	waterfalled := o.Waterfall || o.CollectWaterfall != nil
	if o.Collect == nil && !profiled && !waterfalled {
		res, err = experiment.RunCtx(ctx, j.EffectiveSpec(), j.Load)
		return res, panicked, stack, err
	}
	probe := &metrics.Probe{}
	if o.Collect != nil {
		probe.Reg = metrics.NewRegistry(0)
	}
	if profiled {
		probe.Prof = profile.NewRegistry(0)
	}
	if waterfalled {
		probe.WF = waterfall.New()
	}
	res, err = experiment.RunObservedCtx(ctx, j.EffectiveSpec(), j.Load, probe)
	if err == nil {
		if o.Collect != nil {
			o.Collect(j, probe.Reg)
		}
		if o.CollectProfile != nil {
			o.CollectProfile(j, probe.Prof)
		}
		if o.CollectWaterfall != nil {
			o.CollectWaterfall(j, probe.WF)
		}
	}
	return res, panicked, stack, err
}
