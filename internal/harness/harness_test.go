package harness

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"frfc/internal/core"
	"frfc/internal/experiment"
)

// tinySpec is a fast-to-simulate configuration for harness tests: a 4×4 mesh
// with a reduced sample.
func tinySpec() experiment.Spec {
	s := experiment.FR6(experiment.FastControl, 5)
	s.MeshRadix = 4
	return s.Scaled(150, 300)
}

func tinyVC() experiment.Spec {
	s := experiment.VC8(experiment.FastControl, 5)
	s.MeshRadix = 4
	return s.Scaled(150, 300)
}

// TestParallelEqualsSerial is the determinism contract: RunJobs must produce
// bit-identical Results to serial experiment.Run for every worker count,
// because each job owns its own network and RNG and results are returned in
// job order.
func TestParallelEqualsSerial(t *testing.T) {
	specs := []experiment.Spec{tinySpec(), tinyVC()}
	loads := []float64{0.2, 0.4}
	var jobs []Job
	var serial []experiment.Result
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, Job{Spec: s, Load: l})
			serial = append(serial, experiment.Run(s, l))
		}
	}
	for _, workers := range []int{1, 2, runtime.NumCPU(), 5} {
		got, err := RunJobs(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, jr := range got {
			if jr.Err != "" {
				t.Fatalf("workers=%d job %d failed: %s", workers, i, jr.Err)
			}
			if !reflect.DeepEqual(jr.Result, serial[i]) {
				t.Errorf("workers=%d job %d (spec=%s load=%.2f) diverged from serial:\nparallel: %+v\nserial:   %+v",
					workers, i, serial[i].Spec, serial[i].Load, jr.Result, serial[i])
			}
		}
	}
}

// TestJobHashStability: the hash must be insensitive to unset-vs-explicit
// defaults, and sensitive to anything that changes the simulation.
func TestJobHashStability(t *testing.T) {
	implicit := Job{Spec: experiment.FR6(experiment.FastControl, 5), Load: 0.5}
	explicit := Job{Spec: experiment.FR6(experiment.FastControl, 5).Normalized(), Load: 0.5}
	if implicit.Hash() != explicit.Hash() {
		t.Errorf("hash differs between implicit and explicit defaults")
	}
	faulty := experiment.FR6(experiment.FastControl, 5)
	faulty.Faults = []core.FaultEvent{{At: 100, Kind: core.LinkDown, A: 5, B: 6}}
	routed := experiment.FR6(experiment.FastControl, 5)
	routed.Routing = "yx"
	checked := experiment.FR6(experiment.FastControl, 5)
	checked.Check = true
	perturbed := []Job{
		{Spec: experiment.FR6(experiment.FastControl, 5), Load: 0.6},
		{Spec: experiment.FR6(experiment.FastControl, 21), Load: 0.5},
		{Spec: experiment.FR13(experiment.FastControl, 5), Load: 0.5},
		{Spec: experiment.FR6(experiment.FastControl, 5), Load: 0.5, Seed: 7},
		{Spec: faulty, Load: 0.5},
		{Spec: routed, Load: 0.5},
		{Spec: checked, Load: 0.5},
	}
	for i, j := range perturbed {
		if j.Hash() == implicit.Hash() {
			t.Errorf("perturbation %d did not change the hash", i)
		}
	}
}

// TestPanicIsolation: a panicking job must surface as that job's failure,
// stack attached, while its siblings complete normally.
func TestPanicIsolation(t *testing.T) {
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 5.0}, // out-of-range load panics in experiment.Run
		{Spec: tinySpec(), Load: 0.3},
	}
	results, err := RunJobs(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if results[0].Err != "" || results[2].Err != "" {
		t.Fatalf("sibling jobs failed: %q / %q", results[0].Err, results[2].Err)
	}
	bad := results[1]
	if !bad.Panicked || bad.Err == "" {
		t.Fatalf("panicking job not reported: %+v", bad)
	}
	if !strings.Contains(bad.Err, "out of range") || !strings.Contains(bad.Err, "goroutine") {
		t.Errorf("captured panic lacks message or stack: %.200s", bad.Err)
	}
}

// TestCancellationMidSweep: cancelling the campaign context after the first
// completion must stop the sweep — in-flight jobs exit at their next poll,
// queued jobs never start — and RunJobs reports the cancellation.
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := experiment.FR6(experiment.FastControl, 5).Scaled(3000, 2000)
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Spec: spec, Load: 0.30 + 0.02*float64(i)}
	}
	var once sync.Once
	results, err := RunJobs(ctx, jobs, Options{
		Workers:  2,
		Progress: func(Progress) { once.Do(cancel) },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJobs error = %v, want context.Canceled", err)
	}
	failed := 0
	for _, jr := range results {
		if jr.Err != "" {
			failed++
			if !strings.Contains(jr.Err, "context canceled") {
				t.Errorf("unexpected failure kind: %s", jr.Err)
			}
		}
	}
	if failed == 0 {
		t.Fatal("cancellation stopped nothing")
	}
}

// TestPerJobTimeout: a job exceeding Options.Timeout fails with a deadline
// error instead of stalling the campaign.
func TestPerJobTimeout(t *testing.T) {
	jobs := []Job{{Spec: experiment.FR6(experiment.FastControl, 5).PaperScale(), Load: 0.4}}
	results, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Timeout: time.Millisecond})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if results[0].Err == "" || !strings.Contains(results[0].Err, "deadline") {
		t.Fatalf("timeout not reported: %+v", results[0])
	}
}

// TestProgressReporting: every job produces exactly one progress callback,
// counters are cumulative, and the final snapshot accounts for everything.
func TestProgressReporting(t *testing.T) {
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 0.3},
		{Spec: tinySpec(), Load: 5.0}, // fails
	}
	var mu sync.Mutex
	var snaps []Progress
	_, err := RunJobs(context.Background(), jobs, Options{
		Workers: 2,
		Progress: func(p Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(jobs) {
		t.Fatalf("got %d progress callbacks, want %d", len(snaps), len(jobs))
	}
	last := snaps[len(snaps)-1]
	if last.Done != 3 || last.Total != 3 || last.Failed != 1 {
		t.Errorf("final snapshot wrong: %+v", last)
	}
}
