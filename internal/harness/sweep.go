package harness

import (
	"context"
	"fmt"

	"frfc/internal/experiment"
)

// SweepOptions extends Options for grid sweeps.
type SweepOptions struct {
	Options
	// StopAtSaturation short-circuits each configuration's load series:
	// loads are executed in ascending order per spec (specs still run in
	// parallel), and once a point saturates every higher load is reported
	// as a synthesized Saturated result without simulating it. The
	// short-circuit decision depends only on simulation results, never on
	// scheduling, so output remains deterministic across worker counts —
	// but it differs from a full grid, so it is opt-in.
	StopAtSaturation bool
}

// SweepSpecs runs every (spec, load) point and returns one result row per
// spec, loads in the given order — the parallel analog of calling
// experiment.Sweep once per spec, bit-identical to it.
func SweepSpecs(ctx context.Context, specs []experiment.Spec, loads []float64, o SweepOptions) ([][]JobResult, error) {
	if o.StopAtSaturation {
		return sweepLanes(ctx, specs, loads, o)
	}
	jobs := make([]Job, 0, len(specs)*len(loads))
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, Job{Spec: s, Load: l})
		}
	}
	flat, err := RunJobs(ctx, jobs, o.Options)
	rows := make([][]JobResult, len(specs))
	for i := range specs {
		rows[i] = flat[i*len(loads) : (i+1)*len(loads)]
	}
	return rows, err
}

// sweepLanes runs each spec's loads as one sequential lane so that a
// saturated point deterministically short-circuits the loads above it; lanes
// execute in parallel.
func sweepLanes(ctx context.Context, specs []experiment.Spec, loads []float64, o SweepOptions) ([][]JobResult, error) {
	tr := newTracker(len(specs)*len(loads), o.workers(), o.Progress)
	outs := mapPool(ctx, o.workers(), specs, func(ctx context.Context, _ int, s experiment.Spec) ([]JobResult, error) {
		row := make([]JobResult, 0, len(loads))
		saturatedAt := -1.0
		for _, l := range loads {
			j := Job{Spec: s, Load: l}
			if saturatedAt >= 0 && l >= saturatedAt {
				jr := JobResult{
					Job: j, Hash: j.Hash(), Skipped: true,
					Result: experiment.Result{Spec: j.EffectiveSpec().Name, Load: l, Saturated: true},
				}
				tr.finish(&jr)
				row = append(row, jr)
				continue
			}
			jr := execJob(ctx, j, o.Options, tr)
			if jr.Err == "" && jr.Result.Saturated && saturatedAt < 0 {
				saturatedAt = l
			}
			row = append(row, jr)
		}
		return row, nil
	})
	rows := make([][]JobResult, len(specs))
	var err error
	for i, out := range outs {
		if out.Err != nil {
			// Lane never started: campaign cancelled.
			row := make([]JobResult, len(loads))
			for k, l := range loads {
				row[k] = JobResult{Job: Job{Spec: specs[i], Load: l}, Err: out.Err.Error()}
			}
			rows[i] = row
			err = out.Err
			continue
		}
		rows[i] = out.Value
	}
	if cerr := ctx.Err(); cerr != nil {
		err = cerr
	}
	return rows, err
}

// FaultSweep is experiment.FaultSweep fanned over the worker pool: each
// (loss rate, retry policy) cell owns its own network and RNG, so the points
// come back bit-identical to the serial sweep, in the same order. The first
// cell failure (cancellation or a panic, captured per-cell) is returned as
// the error alongside whatever completed.
func FaultSweep(ctx context.Context, fo experiment.FaultSweepOptions, o Options) ([]experiment.FaultPoint, error) {
	fo = fo.WithDefaults()
	type cell struct {
		rate  float64
		retry int
	}
	cells := make([]cell, 0, 2*len(fo.Rates))
	for _, rate := range fo.Rates {
		for _, retry := range []int{0, fo.RetryLimit} {
			cells = append(cells, cell{rate, retry})
		}
	}
	tr := newTracker(len(cells), o.workers(), o.Progress)
	outs := mapPool(ctx, o.workers(), cells, func(ctx context.Context, _ int, c cell) (pt experiment.FaultPoint, err error) {
		defer func() {
			jr := JobResult{}
			if err != nil {
				jr.Err = err.Error()
			}
			tr.finish(&jr)
		}()
		pt, err = experiment.FaultCell(ctx, fo, c.rate, c.retry)
		return pt, err
	})
	points := make([]experiment.FaultPoint, len(cells))
	var err error
	for i, out := range outs {
		points[i] = out.Value
		if out.Err != nil && err == nil {
			err = fmt.Errorf("fault cell (rate=%g, retry=%d): %w", cells[i].rate, cells[i].retry, out.Err)
		}
	}
	return points, err
}

// IntegritySweep is experiment.IntegritySweep fanned over the worker pool:
// each (BER, end-to-end check) cell owns its own network and RNG, so the
// points come back bit-identical to the serial sweep, in the same order. The
// first cell failure (cancellation or a captured panic) is returned as the
// error alongside whatever completed.
func IntegritySweep(ctx context.Context, io experiment.IntegritySweepOptions, o Options) ([]experiment.IntegrityPoint, error) {
	io = io.WithDefaults()
	type cell struct {
		ber float64
		e2e bool
	}
	cells := make([]cell, 0, 2*len(io.BERs))
	for _, ber := range io.BERs {
		for _, e2e := range []bool{true, false} {
			cells = append(cells, cell{ber, e2e})
		}
	}
	tr := newTracker(len(cells), o.workers(), o.Progress)
	outs := mapPool(ctx, o.workers(), cells, func(ctx context.Context, _ int, c cell) (pt experiment.IntegrityPoint, err error) {
		defer func() {
			jr := JobResult{}
			if err != nil {
				jr.Err = err.Error()
			}
			tr.finish(&jr)
		}()
		pt, err = experiment.IntegrityCell(ctx, io, c.ber, c.e2e)
		return pt, err
	})
	points := make([]experiment.IntegrityPoint, len(cells))
	var err error
	for i, out := range outs {
		points[i] = out.Value
		if out.Err != nil && err == nil {
			err = fmt.Errorf("integrity cell (ber=%g, e2e=%v): %w", cells[i].ber, cells[i].e2e, out.Err)
		}
	}
	return points, err
}

// ChaosSweep is experiment.ChaosSweep fanned over the worker pool: each
// intensity's campaign owns its own network and RNG (and the chaos plan is a
// pure function of the options), so the points come back bit-identical to the
// serial sweep, in intensity order. The first cell failure (cancellation or a
// captured panic) is returned as the error alongside whatever completed.
func ChaosSweep(ctx context.Context, co experiment.ChaosSweepOptions, o Options) ([]experiment.ChaosPoint, error) {
	co = co.WithDefaults()
	tr := newTracker(len(co.Intensities), o.workers(), o.Progress)
	outs := mapPool(ctx, o.workers(), co.Intensities, func(ctx context.Context, _ int, intensity float64) (pt experiment.ChaosPoint, err error) {
		defer func() {
			jr := JobResult{}
			if err != nil {
				jr.Err = err.Error()
			}
			tr.finish(&jr)
		}()
		pt, err = experiment.ChaosCell(ctx, co, intensity)
		return pt, err
	})
	points := make([]experiment.ChaosPoint, len(co.Intensities))
	var err error
	for i, out := range outs {
		points[i] = out.Value
		if out.Err != nil && err == nil {
			err = fmt.Errorf("chaos cell (intensity=%g): %w", co.Intensities[i], out.Err)
		}
	}
	return points, err
}

// ReliabilitySweep is experiment.ReliabilitySweep fanned over the worker
// pool: each hard-fault scenario owns its own network and RNG, so the points
// come back bit-identical to the serial sweep, in scenario order. The first
// cell failure (an invalid scenario, cancellation, or a captured panic) is
// returned as the error alongside whatever completed.
func ReliabilitySweep(ctx context.Context, ro experiment.ReliabilitySweepOptions, o Options) ([]experiment.ReliabilityPoint, error) {
	ro = ro.WithDefaults()
	tr := newTracker(len(ro.Scenarios), o.workers(), o.Progress)
	outs := mapPool(ctx, o.workers(), ro.Scenarios, func(ctx context.Context, _ int, sc experiment.ReliabilityScenario) (pt experiment.ReliabilityPoint, err error) {
		defer func() {
			jr := JobResult{}
			if err != nil {
				jr.Err = err.Error()
			}
			tr.finish(&jr)
		}()
		pt, err = experiment.ReliabilityCell(ctx, ro, sc)
		return pt, err
	})
	points := make([]experiment.ReliabilityPoint, len(ro.Scenarios))
	var err error
	for i, out := range outs {
		points[i] = out.Value
		if out.Err != nil && err == nil {
			err = fmt.Errorf("reliability scenario %q: %w", ro.Scenarios[i].Name, out.Err)
		}
	}
	return points, err
}
