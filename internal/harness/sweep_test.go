package harness

import (
	"context"
	"reflect"
	"testing"

	"frfc/internal/core"
	"frfc/internal/experiment"
)

// TestSweepSpecsMatchesSerialSweep: the grid sweep must reproduce
// experiment.Sweep bit-for-bit, per spec, at any worker count.
func TestSweepSpecsMatchesSerialSweep(t *testing.T) {
	specs := []experiment.Spec{tinySpec(), tinyVC()}
	loads := []float64{0.2, 0.4}
	rows, err := SweepSpecs(context.Background(), specs, loads, SweepOptions{Options: Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		serial := experiment.Sweep(s, loads)
		for j := range loads {
			if rows[i][j].Err != "" {
				t.Fatalf("spec %d load %d failed: %s", i, j, rows[i][j].Err)
			}
			if !reflect.DeepEqual(rows[i][j].Result, serial[j]) {
				t.Errorf("spec %s load %.2f diverged from serial sweep", s.Name, loads[j])
			}
		}
	}
}

// TestStopAtSaturationDeterministic: the short-circuit decision depends only
// on simulation results, so rows (including Skipped flags) must be identical
// across worker counts, and every skipped point must sit above a simulated
// saturated one.
func TestStopAtSaturationDeterministic(t *testing.T) {
	specs := []experiment.Spec{tinySpec(), tinyVC()}
	loads := []float64{0.30, 0.92, 0.96}
	var ref [][]JobResult
	for _, workers := range []int{1, 3} {
		rows, err := SweepSpecs(context.Background(), specs, loads, SweepOptions{
			Options:          Options{Workers: workers},
			StopAtSaturation: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			sawSat := false
			for j, jr := range rows[i] {
				if jr.Skipped {
					if !sawSat {
						t.Errorf("workers=%d spec %d: load %.2f skipped before any saturated point", workers, i, loads[j])
					}
					if !jr.Result.Saturated {
						t.Errorf("workers=%d: skipped point not marked saturated", workers)
					}
				}
				if jr.Err == "" && jr.Result.Saturated {
					sawSat = true
				}
			}
		}
		// Elapsed is wall-clock metadata; strip it before comparing the
		// deterministic payload.
		for i := range rows {
			for j := range rows[i] {
				rows[i][j].Elapsed = 0
			}
		}
		if ref == nil {
			ref = rows
			continue
		}
		if !reflect.DeepEqual(rows, ref) {
			t.Errorf("workers=%d short-circuit sweep diverged from workers=1", workers)
		}
	}
	// The short-circuit must actually trigger on this grid: every tiny
	// config saturates well before 96% load.
	skipped := 0
	for _, row := range ref {
		for _, jr := range row {
			if jr.Skipped {
				skipped++
			}
		}
	}
	if skipped == 0 {
		t.Error("no point was short-circuited; grid does not exercise the feature")
	}
}

// TestFaultSweepParallelMatchesSerial: the fault sweep fanned over workers
// must reproduce the serial sweep exactly, in the same cell order.
func TestFaultSweepParallelMatchesSerial(t *testing.T) {
	o := experiment.FaultSweepOptions{Radix: 4, Packets: 60, RetryLimit: 4, Rates: []float64{0, 0.05}}
	serial := experiment.FaultSweep(o)
	parallel, err := FaultSweep(context.Background(), o, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel fault sweep diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestReliabilitySweepParallelMatchesSerial: the hard-fault scenario sweep
// fanned over workers must reproduce the serial sweep exactly, in scenario
// order.
func TestReliabilitySweepParallelMatchesSerial(t *testing.T) {
	o := experiment.ReliabilitySweepOptions{Packets: 200, Check: true}
	serial := experiment.ReliabilitySweep(o)
	parallel, err := ReliabilitySweep(context.Background(), o, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel reliability sweep diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestScenarioJobsDeterministicAcrossWorkers: a campaign whose specs carry a
// hard-fault scenario must stay bit-identical across worker counts — faults
// ride the job spec, so the schedule replays identically wherever the job
// lands.
func TestScenarioJobsDeterministicAcrossWorkers(t *testing.T) {
	s := tinySpec()
	s.Name = "FR6-linkflap"
	s.FR.RetryLimit = 4
	s.Routing = "table"
	s.Check = true
	s.Faults = []core.FaultEvent{
		{At: 300, Kind: core.LinkDown, A: 5, B: 6},
		{At: 900, Kind: core.LinkUp, A: 5, B: 6},
	}
	jobs := []Job{{Spec: s, Load: 0.2}, {Spec: s, Load: 0.4, Seed: 2}, {Spec: s, Load: 0.4, Seed: 3}}
	ref, err := RunJobs(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range ref {
		if jr.Err != "" {
			t.Fatalf("job %d failed: %s", i, jr.Err)
		}
	}
	for _, workers := range []int{2, 4} {
		got, err := RunJobs(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range jobs {
			if got[i].Err != "" {
				t.Fatalf("workers=%d job %d failed: %s", workers, i, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Result, ref[i].Result) {
				t.Errorf("workers=%d job %d diverged from serial:\nparallel: %+v\nserial:   %+v",
					workers, i, got[i].Result, ref[i].Result)
			}
		}
	}
}
