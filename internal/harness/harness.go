// Package harness orchestrates experiment campaigns: it fans independent
// (configuration, offered-load) points out over a worker pool, caches results
// in an append-only JSONL store keyed by a stable content hash so interrupted
// campaigns resume where they stopped, streams progress, and locates
// saturation throughput adaptively by bisection instead of a fixed load grid.
//
// The determinism contract: every job owns its own network and RNG (seeded
// only from the job's spec), jobs never share mutable state, and results are
// returned in job order regardless of completion order — so a campaign run on
// N workers is bit-identical to the same campaign run serially. The contract
// is enforced by TestParallelEqualsSerial across worker counts.
//
// A panicking job is captured — stack and all — as that job's failure; its
// siblings and the campaign continue. Cancellation is cooperative: the
// simulator polls the context every 1024 cycles, so a per-job timeout or a
// campaign-wide cancel stops work without leaking goroutines.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/metrics"
	"frfc/internal/profile"
	"frfc/internal/waterfall"
)

// Job is one unit of work: a configuration simulated at one offered load.
type Job struct {
	Spec experiment.Spec
	// Load is the offered traffic as a fraction of network capacity.
	Load float64
	// Seed, when nonzero, overrides the spec's RNG seed for this job —
	// the way a campaign decorrelates replicas of one configuration.
	Seed uint64
}

// EffectiveSpec is the spec the job actually executes: normalized (defaults
// filled) with any Seed override applied. Hashing and execution both use it,
// so a spec and its explicit-default twin share a cache key.
func (j Job) EffectiveSpec() experiment.Spec {
	s := j.Spec.Normalized()
	if j.Seed != 0 {
		s.Seed = j.Seed
	}
	return s
}

// hashVersion is baked into every job hash; bump it when Result fields or
// simulator semantics change so stale caches miss instead of lying.
// v2: Result gained batch-means/autocorrelation fields and WarmupUnstable.
// v3: Spec gained Routing/Faults/Check (hard-fault scenarios change the
// simulation), Result gained UnreachablePackets and DeliveredFraction.
// v4: the bit-error model (Config BER/CrcBits/E2ECheck/ReclaimCycles, Spec
// chaos fields) changes simulator semantics, and Result gained the
// corruption ledger.
// v5: Result gained the self-profiling summary fields (ProfTicks,
// ProfIdleFraction, per-phase work attribution).
// v6: Result gained the latency-waterfall stage summary fields
// (WaterfallPackets/Total and the seven per-stage cycle totals).
const hashVersion = "frfc-job-v6"

// Hash is the job's stable content hash: a digest of the normalized spec
// (every field, including nested router configs and the traffic pattern's
// concrete type), the offered load, and the seed override. Two jobs hash
// equal exactly when Run would execute identical simulations, which is what
// makes the hash a safe result-cache key and a safe per-job RNG root.
func (j Job) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%#v|%.12g", hashVersion, j.EffectiveSpec(), j.Load)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// JobResult is one job's outcome. Exactly one of Result (Err == "") or Err is
// meaningful; Cached and Skipped qualify how the result was obtained.
type JobResult struct {
	Job  Job
	Hash string
	// Result is the simulation's report when the job succeeded (or was
	// served from the store, or synthesized by a saturation short-circuit).
	Result experiment.Result
	// Err is non-empty when the job failed: a captured panic (with
	// Panicked set and the stack appended), a per-job timeout, or a
	// campaign cancellation.
	Err      string
	Panicked bool
	// Cached is set when the result came from the store without running.
	Cached bool
	// Skipped is set when a saturation short-circuit synthesized the
	// result (Saturated=true) without running the simulation.
	Skipped bool
	// Elapsed is the wall-clock execution time (zero for cached/skipped).
	Elapsed time.Duration
}

// Options tunes a campaign. The zero value runs with NumCPU workers, no
// per-job timeout, no store, and no progress reporting.
type Options struct {
	// Workers is the pool size; 0 means runtime.NumCPU().
	Workers int
	// Timeout, when nonzero, bounds each job's execution; a job that
	// exceeds it fails with context.DeadlineExceeded. Cached results are
	// exempt.
	Timeout time.Duration
	// Store, when non-nil, is consulted before running a job and appended
	// to after each success, making the campaign resumable. *Store is the
	// single-file implementation; internal/service layers a segmented
	// database behind the same interface.
	Store ResultStore
	// Progress, when non-nil, is called after every job completion (it
	// must be fast; it runs under the campaign's bookkeeping lock).
	Progress func(Progress)
	// JobStarted, when non-nil, is called from the worker about to simulate
	// a job — after the store lookup misses, before the run. JobFinished,
	// when non-nil, is called with every job's outcome (simulated, cached,
	// skipped or failed). Both fire concurrently from worker goroutines and
	// must be safe for that; neither may mutate the job. They exist to feed
	// live status displays and never influence results.
	JobStarted  func(Job)
	JobFinished func(JobResult)
	// Collect, when non-nil, receives each simulated job's metrics registry
	// immediately after its run, from the worker goroutine. Attaching the
	// collector probes every run; the probe is observation-only, so results
	// stay bit-identical to an uninstrumented campaign (the contract
	// TestRunObservedMatchesRun enforces). Cached and skipped jobs carry no
	// registry and are not reported.
	Collect func(Job, *metrics.Registry)
	// Profile arms self-profiling on every simulated job: each run carries
	// a profile registry whose deterministic activity summary lands in the
	// Result's Prof* fields. Observation-only like Collect — the shared
	// fields of a profiled Result are bit-identical to an unprofiled run,
	// and profiled campaigns are bit-identical across worker counts.
	Profile bool
	// CollectProfile, when non-nil, receives each simulated job's profile
	// registry immediately after its run, from the worker goroutine
	// (implies Profile). Cached and skipped jobs are not reported.
	CollectProfile func(Job, *profile.Registry)
	// Waterfall arms latency provenance on every simulated job: each run
	// carries a stage ledger decomposing every sampled packet's latency
	// into queue/reserve/arb/stall/sched/link/drain, summarized in the
	// Result's Waterfall* fields. Observation-only like Profile: the
	// shared fields of a waterfall Result are bit-identical to a plain
	// run, and waterfall campaigns are bit-identical across worker counts.
	Waterfall bool
	// CollectWaterfall, when non-nil, receives each simulated job's stage
	// ledger immediately after its run, from the worker goroutine (implies
	// Waterfall). Cached and skipped jobs are not reported.
	CollectWaterfall func(Job, *waterfall.Ledger)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}
