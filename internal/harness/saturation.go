package harness

import (
	"context"
	"fmt"
	"math"

	"frfc/internal/experiment"
)

// SatResult is one configuration's adaptive saturation search outcome.
type SatResult struct {
	Spec string
	// Saturation is the highest sustainable offered load found (fraction
	// of capacity); Effective is debited by the spec's bandwidth penalty,
	// the paper's comparison basis.
	Saturation float64
	Effective  float64
	// BaseLatency is the contention-free latency the search calibrated
	// against.
	BaseLatency float64
	// Evals counts bisection evaluations; Simulated counts how many were
	// actually run (the rest came from the result store).
	Evals     int
	Simulated int
	// Err is non-empty when the search could not complete (cancellation,
	// a failed run, or a spec that delivers nothing at base load).
	Err string
}

// SaturationSearch locates each spec's saturation throughput by bisection —
// O(log((hi-lo)/resolution)) runs per configuration instead of a fixed load
// grid. Specs search in parallel (each bisection chain is inherently
// sequential); every individual run flows through the job executor, so the
// result store caches and resumes searches exactly like grid sweeps. The
// search mirrors experiment.SaturationThroughput and returns identical
// saturation points for identical options.
func SaturationSearch(ctx context.Context, specs []experiment.Spec, so experiment.SaturationOptions, o Options) ([]SatResult, error) {
	so = saturationDefaults(so)
	// Worst-case evals per spec: base latency + the two endpoints + the
	// bisection chain. Display-only estimate for progress.
	perSpec := 3 + int(math.Ceil(math.Log2((so.Hi-so.Lo)/so.Resolution)))
	tr := newTracker(len(specs)*perSpec, o.workers(), o.Progress)

	outs := mapPool(ctx, o.workers(), specs, func(ctx context.Context, _ int, s experiment.Spec) (SatResult, error) {
		return searchOne(ctx, s, so, o, tr), nil
	})
	results := make([]SatResult, len(specs))
	for i, out := range outs {
		if out.Err != nil {
			results[i] = SatResult{Spec: specs[i].Normalized().Name, Err: out.Err.Error()}
			continue
		}
		results[i] = out.Value
	}
	return results, ctx.Err()
}

// saturationDefaults mirrors experiment.SaturationOptions.withDefaults so the
// two searches bisect identical load sequences.
func saturationDefaults(o experiment.SaturationOptions) experiment.SaturationOptions {
	if o.LatencyFactor == 0 {
		o.LatencyFactor = 6
	}
	if o.Resolution == 0 {
		o.Resolution = 0.01
	}
	if o.Hi == 0 {
		o.Hi = 1.0
	}
	if o.Lo == 0 {
		o.Lo = 0.10
	}
	return o
}

// searchOne bisects one spec's saturation load, routing every run through the
// cached, panic-isolated job executor.
func searchOne(ctx context.Context, s experiment.Spec, so experiment.SaturationOptions, o Options, tr *tracker) SatResult {
	s = s.Normalized()
	sr := SatResult{Spec: s.Name}

	run := func(spec experiment.Spec, load float64) (experiment.Result, error) {
		jr := execJob(ctx, Job{Spec: spec, Load: load}, o, tr)
		sr.Evals++
		if !jr.Cached {
			sr.Simulated++
		}
		if jr.Err != "" {
			return experiment.Result{}, fmt.Errorf("%s at load %.4f: %s", spec.Name, load, jr.Err)
		}
		return jr.Result, nil
	}

	// Base latency, as experiment.BaseLatency measures it: a light load
	// with a reduced sample.
	baseSpec := s
	baseSpec.SamplePackets = min(baseSpec.SamplePackets, 500)
	baseRes, err := run(baseSpec, 0.02)
	if err != nil {
		sr.Err = err.Error()
		return sr
	}
	sr.BaseLatency = baseRes.AvgLatency
	if sr.BaseLatency <= 0 {
		sr.Err = "zero base latency — spec cannot deliver packets"
		return sr
	}

	sustainable := func(load float64) (bool, error) {
		r, err := run(s, load)
		if err != nil {
			return false, err
		}
		return !r.Saturated && r.AvgLatency <= so.LatencyFactor*sr.BaseLatency, nil
	}

	lo, hi := so.Lo, so.Hi
	ok, err := sustainable(lo)
	if err != nil {
		sr.Err = err.Error()
		return sr
	}
	if !ok {
		sr.Saturation = lo
		sr.Effective = lo * (1 - s.BandwidthPenalty)
		return sr
	}
	if ok, err = sustainable(hi); err != nil {
		sr.Err = err.Error()
		return sr
	} else if ok {
		sr.Saturation = hi
		sr.Effective = hi * (1 - s.BandwidthPenalty)
		return sr
	}
	for hi-lo > so.Resolution {
		mid := (lo + hi) / 2
		ok, err := sustainable(mid)
		if err != nil {
			sr.Err = err.Error()
			return sr
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	sr.Saturation = lo
	sr.Effective = lo * (1 - s.BandwidthPenalty)
	return sr
}

// SummarizeAll measures one Table 3 row per spec — base latency, latency at
// 50% capacity, and saturation throughput — with the specs fanned over the
// worker pool. Row values equal experiment.Summarize's for the same options.
func SummarizeAll(ctx context.Context, specs []experiment.Spec, so experiment.SaturationOptions, o Options) ([]experiment.SummaryRow, error) {
	outs := mapPool(ctx, o.workers(), specs, func(ctx context.Context, _ int, s experiment.Spec) (experiment.SummaryRow, error) {
		return experiment.Summarize(s, so), nil
	})
	rows := make([]experiment.SummaryRow, len(specs))
	var err error
	for i, out := range outs {
		if out.Err != nil {
			if err == nil {
				err = fmt.Errorf("summarize %s: %w", specs[i].Normalized().Name, out.Err)
			}
			rows[i] = experiment.SummaryRow{Spec: specs[i].Normalized().Name}
			continue
		}
		rows[i] = out.Value
	}
	return rows, err
}
