package harness

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"frfc/internal/experiment"
)

// TestSaturationSearchMatchesSerial: the pooled bisection must land on the
// same saturation point as experiment.SaturationThroughput, because it walks
// the identical load sequence through the identical sustainability predicate.
func TestSaturationSearchMatchesSerial(t *testing.T) {
	spec := tinySpec()
	so := experiment.SaturationOptions{Resolution: 0.05, Lo: 0.2, Hi: 0.9}
	want := experiment.SaturationThroughput(spec, so)

	got, err := SaturationSearch(context.Background(), []experiment.Spec{spec}, so, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sr := got[0]
	if sr.Err != "" {
		t.Fatalf("search failed: %s", sr.Err)
	}
	if sr.Saturation != want {
		t.Errorf("saturation %.4f, serial search found %.4f", sr.Saturation, want)
	}
	wantEff := want * (1 - spec.Normalized().BandwidthPenalty)
	if math.Abs(sr.Effective-wantEff) > 1e-12 {
		t.Errorf("effective %.6f, want %.6f", sr.Effective, wantEff)
	}
	if sr.Evals == 0 || sr.Simulated != sr.Evals {
		t.Errorf("eval accounting wrong on a cold run: evals=%d simulated=%d", sr.Evals, sr.Simulated)
	}
	// Bisection cost must stay logarithmic: base + endpoints + chain.
	bound := 3 + int(math.Ceil(math.Log2((so.Hi-so.Lo)/so.Resolution)))
	if sr.Evals > bound {
		t.Errorf("search took %d evals, bound is %d", sr.Evals, bound)
	}
}

// TestSaturationSearchResumes: a repeated search over a warm store simulates
// nothing — every bisection step is a cache hit.
func TestSaturationSearchResumes(t *testing.T) {
	spec := tinySpec()
	so := experiment.SaturationOptions{Resolution: 0.1, Lo: 0.2, Hi: 0.9}
	path := filepath.Join(t.TempDir(), "sat.jsonl")

	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := SaturationSearch(context.Background(), []experiment.Spec{spec}, so, Options{Workers: 1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	second, err := SaturationSearch(context.Background(), []experiment.Spec{spec}, so, Options{Workers: 1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Simulated != 0 {
		t.Errorf("resumed search simulated %d points, want 0", second[0].Simulated)
	}
	if second[0].Saturation != first[0].Saturation {
		t.Errorf("resumed search moved the saturation point: %.4f vs %.4f", second[0].Saturation, first[0].Saturation)
	}
}
