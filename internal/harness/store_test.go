package harness

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"frfc/internal/experiment"
)

// TestStoreRoundTrip: results written by Put come back from a reopened store
// bit-identical.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Spec: tinySpec(), Load: 0.25}
	res := experiment.Run(job.Spec, job.Load)
	if err := st.Put(job, job.Hash(), res); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, ok := st2.Get(job.Hash())
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result changed across the store round trip:\ngot:  %+v\nwant: %+v", got, res)
	}
}

// TestCacheHitMissAndResume: a second campaign over the same jobs must
// execute zero simulations — every point is a cache hit — and a third over a
// superset must simulate only the new points.
func TestCacheHitMissAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 0.3},
	}

	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunJobs(context.Background(), jobs, Options{Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for i, jr := range first {
		if jr.Cached {
			t.Errorf("job %d cached on a cold store", i)
		}
	}

	st, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunJobs(context.Background(), jobs, Options{Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range second {
		if !jr.Cached {
			t.Errorf("job %d re-simulated despite a warm store", i)
		}
		if !reflect.DeepEqual(jr.Result, first[i].Result) {
			t.Errorf("job %d cached result differs from the original", i)
		}
	}

	superset := append(jobs, Job{Spec: tinySpec(), Load: 0.4})
	third, err := RunJobs(context.Background(), superset, Options{Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if !third[0].Cached || !third[1].Cached || third[2].Cached {
		t.Errorf("superset cache pattern wrong: %v %v %v", third[0].Cached, third[1].Cached, third[2].Cached)
	}
}

// TestResumeAfterPartialWrite: a store whose final line was cut mid-write (a
// killed campaign) must load every complete line, drop the partial one, and
// let the campaign re-run exactly the lost point.
func TestResumeAfterPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 0.3},
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Store: st}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Cut the file mid-way through the last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 store lines, got %d", len(lines))
	}
	cut := len(data) - len(lines[1])/2
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	st, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 1 {
		t.Fatalf("store loaded %d entries from truncated file, want 1", st.Len())
	}
	if st.Skipped() != 1 {
		t.Errorf("store skipped %d lines, want 1", st.Skipped())
	}
	results, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Cached {
		t.Error("intact entry was re-simulated")
	}
	if results[1].Cached {
		t.Error("truncated entry was served from cache")
	}
	if results[1].Err != "" {
		t.Fatalf("re-run of lost point failed: %s", results[1].Err)
	}

	// The store healed its tail: a fresh open must now see both entries.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("store holds %d entries after resume, want 2 (file tail not healed?)", st2.Len())
	}
}

// TestStoreIgnoresForeignJunk: garbage lines anywhere in the file are counted
// and skipped, never fatal.
func TestStoreIgnoresForeignJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"hash\":\"\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 || st.Skipped() != 2 {
		t.Fatalf("len=%d skipped=%d, want 0/2", st.Len(), st.Skipped())
	}
}

// TestStoreConcurrentAppendAndRead: two goroutines appending distinct jobs to
// one store while a third reads back — under -race — must produce no torn
// records: a reopened store resolves every hash with zero skipped lines, and
// dedup-by-hash yields exactly one entry per job.
func TestStoreConcurrentAppendAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}

	// Two disjoint job sets, one per writer; both writers also re-Put their
	// first job so the dedup-by-hash path runs concurrently with appends.
	mkJobs := func(seed uint64, n int) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{Spec: tinySpec(), Load: 0.2 + float64(i)*0.01, Seed: seed}
		}
		return jobs
	}
	sets := [][]Job{mkJobs(11, 8), mkJobs(22, 8)}
	res := experiment.Run(sets[0][0].Spec, sets[0][0].Load) // one shared result is fine: the store keys by hash

	var writers, reader sync.WaitGroup
	for _, jobs := range sets {
		writers.Add(1)
		go func(jobs []Job) {
			defer writers.Done()
			for _, j := range jobs {
				if err := st.Put(j, j.Hash(), res); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
			if err := st.Put(jobs[0], jobs[0].Hash(), res); err != nil { // duplicate hash
				t.Errorf("re-Put: %v", err)
			}
		}(jobs)
	}
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader racing the appends
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, jobs := range sets {
				for _, j := range jobs {
					if r, ok := st.Get(j.Hash()); ok && !reflect.DeepEqual(r, res) {
						t.Error("reader observed a torn or foreign result")
						return
					}
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	st.Close()

	// Reopen: every line must decode (no torn records) and dedup-by-hash must
	// resolve exactly one entry per distinct job.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Skipped() != 0 {
		t.Fatalf("reopen skipped %d lines: concurrent appends tore records", st2.Skipped())
	}
	if want := len(sets[0]) + len(sets[1]); st2.Len() != want {
		t.Fatalf("reopen holds %d entries, want %d", st2.Len(), want)
	}
	for _, jobs := range sets {
		for _, j := range jobs {
			if _, ok := st2.Get(j.Hash()); !ok {
				t.Fatalf("hash %s lost", j.Hash())
			}
		}
	}
}
