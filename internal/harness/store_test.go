package harness

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"frfc/internal/experiment"
)

// TestStoreRoundTrip: results written by Put come back from a reopened store
// bit-identical.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Spec: tinySpec(), Load: 0.25}
	res := experiment.Run(job.Spec, job.Load)
	if err := st.Put(job, job.Hash(), res); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, ok := st2.Get(job.Hash())
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result changed across the store round trip:\ngot:  %+v\nwant: %+v", got, res)
	}
}

// TestCacheHitMissAndResume: a second campaign over the same jobs must
// execute zero simulations — every point is a cache hit — and a third over a
// superset must simulate only the new points.
func TestCacheHitMissAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 0.3},
	}

	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunJobs(context.Background(), jobs, Options{Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	for i, jr := range first {
		if jr.Cached {
			t.Errorf("job %d cached on a cold store", i)
		}
	}

	st, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunJobs(context.Background(), jobs, Options{Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range second {
		if !jr.Cached {
			t.Errorf("job %d re-simulated despite a warm store", i)
		}
		if !reflect.DeepEqual(jr.Result, first[i].Result) {
			t.Errorf("job %d cached result differs from the original", i)
		}
	}

	superset := append(jobs, Job{Spec: tinySpec(), Load: 0.4})
	third, err := RunJobs(context.Background(), superset, Options{Workers: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if !third[0].Cached || !third[1].Cached || third[2].Cached {
		t.Errorf("superset cache pattern wrong: %v %v %v", third[0].Cached, third[1].Cached, third[2].Cached)
	}
}

// TestResumeAfterPartialWrite: a store whose final line was cut mid-write (a
// killed campaign) must load every complete line, drop the partial one, and
// let the campaign re-run exactly the lost point.
func TestResumeAfterPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	jobs := []Job{
		{Spec: tinySpec(), Load: 0.2},
		{Spec: tinySpec(), Load: 0.3},
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Store: st}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Cut the file mid-way through the last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 store lines, got %d", len(lines))
	}
	cut := len(data) - len(lines[1])/2
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	st, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 1 {
		t.Fatalf("store loaded %d entries from truncated file, want 1", st.Len())
	}
	if st.Skipped() != 1 {
		t.Errorf("store skipped %d lines, want 1", st.Skipped())
	}
	results, err := RunJobs(context.Background(), jobs, Options{Workers: 1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Cached {
		t.Error("intact entry was re-simulated")
	}
	if results[1].Cached {
		t.Error("truncated entry was served from cache")
	}
	if results[1].Err != "" {
		t.Fatalf("re-run of lost point failed: %s", results[1].Err)
	}

	// The store healed its tail: a fresh open must now see both entries.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("store holds %d entries after resume, want 2 (file tail not healed?)", st2.Len())
	}
}

// TestStoreIgnoresForeignJunk: garbage lines anywhere in the file are counted
// and skipped, never fatal.
func TestStoreIgnoresForeignJunk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"hash\":\"\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 || st.Skipped() != 2 {
		t.Fatalf("len=%d skipped=%d, want 0/2", st.Len(), st.Skipped())
	}
}
