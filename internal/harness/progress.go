package harness

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a campaign snapshot, delivered to Options.Progress after every
// job completion. Counters are cumulative; Done includes cached, skipped and
// failed jobs.
type Progress struct {
	// Total is the number of jobs in the campaign. Adaptive searches,
	// whose run count is data-dependent, report their worst-case estimate.
	Total int
	Done  int
	// Cached jobs were served from the store; Skipped were synthesized by
	// a saturation short-circuit; Failed carry a non-empty Err.
	Cached  int
	Skipped int
	Failed  int
	// Elapsed is wall-clock time since the campaign started. ETA is a
	// naive projection from the mean execution time of the jobs actually
	// simulated so far (zero until one finishes); display only.
	Elapsed time.Duration
	ETA     time.Duration
}

// String renders the snapshot as one status line.
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d done", p.Done, p.Total)
	if p.Cached > 0 {
		s += fmt.Sprintf(", %d cached", p.Cached)
	}
	if p.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped", p.Skipped)
	}
	if p.Failed > 0 {
		s += fmt.Sprintf(", %d failed", p.Failed)
	}
	if p.ETA > 0 {
		s += fmt.Sprintf(", ~%s left", p.ETA.Round(time.Second))
	}
	return s
}

// tracker accumulates campaign progress and fans snapshots out to the
// user-supplied callback. All bookkeeping runs under one lock so callbacks
// observe monotonic snapshots.
type tracker struct {
	mu       sync.Mutex
	p        Progress
	workers  int
	start    time.Time
	simTime  time.Duration // summed execution time of simulated jobs
	simCount int
	report   func(Progress)
}

func newTracker(total, workers int, report func(Progress)) *tracker {
	return &tracker{p: Progress{Total: total}, workers: workers, start: time.Now(), report: report}
}

// finish folds one completed job into the counters and reports.
func (t *tracker) finish(jr *JobResult) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.p.Done++
	switch {
	case jr.Cached:
		t.p.Cached++
	case jr.Skipped:
		t.p.Skipped++
	case jr.Err != "":
		t.p.Failed++
		t.simTime += jr.Elapsed
		t.simCount++
	default:
		t.simTime += jr.Elapsed
		t.simCount++
	}
	t.p.Elapsed = time.Since(t.start)
	t.p.ETA = 0
	if remaining := t.p.Total - t.p.Done; remaining > 0 && t.simCount > 0 {
		per := t.simTime / time.Duration(t.simCount)
		t.p.ETA = per * time.Duration(remaining) / time.Duration(max(t.workers, 1))
	}
	// Reported under the lock so callbacks observe snapshots in order.
	if t.report != nil {
		t.report(t.p)
	}
	t.mu.Unlock()
}

// NewProgressWriter returns a Progress callback that streams status lines to
// w (typically stderr), throttled to one line per interval plus the final
// line. interval <= 0 means every update.
func NewProgressWriter(w io.Writer, interval time.Duration) func(Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if p.Done < p.Total && interval > 0 && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(w, "harness: %s\n", p)
	}
}
