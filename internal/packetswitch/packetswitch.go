// Package packetswitch implements the packet-granularity flow-control
// methods reviewed in Section 2 of the paper: store-and-forward flow control
// (each node receives an entire packet before forwarding any of it — the
// method of early computer networks and the Cosmic Cube) and virtual
// cut-through [KerKle79] (transmission may begin as soon as the header
// arrives, but buffers and channels are still allocated in packet-sized
// units). Together with internal/wormhole and internal/vcrouter they complete
// the lineage the paper positions flit-reservation flow control against.
//
// Both methods share one router structure: per-input packet-sized buffers,
// packet-granularity credits, and a channel held head-to-tail; they differ
// only in when a buffered packet becomes eligible to forward.
package packetswitch

import (
	"fmt"

	"frfc/internal/noc"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// Mode selects the forwarding rule.
type Mode int

// Modes.
const (
	// StoreAndForward forwards a packet only after every flit arrived.
	StoreAndForward Mode = iota
	// CutThrough forwards as soon as the header has been routed,
	// streaming the remaining flits as they arrive.
	CutThrough
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case StoreAndForward:
		return "store-and-forward"
	case CutThrough:
		return "cut-through"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config selects a packet-switched network configuration.
type Config struct {
	Mode Mode
	// PacketBuffers is the number of packet-sized buffers per input.
	PacketBuffers int
	// MaxPacketLen is the capacity of each packet buffer in flits;
	// offering a longer packet panics.
	MaxPacketLen int

	LinkLatency   sim.Cycle
	CreditLatency sim.Cycle
	LocalLatency  sim.Cycle

	Routing routing.Algorithm
}

func (c Config) withDefaults() Config {
	if c.PacketBuffers == 0 {
		c.PacketBuffers = 2
	}
	if c.MaxPacketLen == 0 {
		c.MaxPacketLen = 32
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 4
	}
	if c.CreditLatency == 0 {
		c.CreditLatency = 1
	}
	if c.LocalLatency == 0 {
		c.LocalLatency = 1
	}
	if c.Routing == nil {
		c.Routing = routing.XY
	}
	return c
}

func (c Config) validate() {
	if c.PacketBuffers < 1 {
		panic("packetswitch: PacketBuffers must be >= 1")
	}
	if c.MaxPacketLen < 1 {
		panic("packetswitch: MaxPacketLen must be >= 1")
	}
	if c.LinkLatency < 1 || c.CreditLatency < 1 || c.LocalLatency < 1 {
		panic("packetswitch: link latencies must be >= 1 cycle")
	}
	if c.Mode != StoreAndForward && c.Mode != CutThrough {
		panic("packetswitch: unknown mode")
	}
}

// packetSlot is one packet-sized buffer of an input port.
type packetSlot struct {
	occupied bool
	flits    []noc.DataFlit
	received int
	total    int
	routed   bool
	route    topology.Port
	headAt   sim.Cycle // when the head flit arrived
	lastAt   sim.Cycle // when the most recent flit arrived
	sent     int       // flits already forwarded
	granted  bool      // owns its output channel until the tail is sent
}

type inputState struct {
	exists    bool
	slots     []packetSlot
	assembly  int // slot currently receiving flits, -1 if none
	data      *sim.Pipe[noc.DataFlit]
	creditOut *sim.Pipe[noc.VCCredit]
}

type outputState struct {
	exists   bool
	infinite bool
	credits  int // free packet buffers downstream
	busyWith int // index of the (input*slots+slot) currently holding the channel, -1 if free
	data     *sim.Pipe[noc.DataFlit]
	creditIn *sim.Pipe[noc.VCCredit]
}

// Router is one store-and-forward or cut-through router.
type Router struct {
	id   topology.NodeID
	mesh topology.Mesh
	cfg  Config
	rng  *sim.RNG

	in  [topology.NumPorts]inputState
	out [topology.NumPorts]outputState

	// wf is the latency-stage ledger cached off the probe at attach time;
	// nil when latency provenance is disabled. A buffered sampled head's
	// wait is charged per cycle: store-and-forward assembly and exhausted
	// downstream buffers → Stall, the 1-cycle routing decision and lost (or
	// busy-channel) arbitration → Arb.
	wf *waterfall.Ledger

	cands []int // scratch: encoded (port, slot) switch candidates

	// freeAtStart snapshots, per output, whether the channel was free when
	// this cycle's grant loop began, so a head denied by busyWith can be
	// attributed to a lost arbitration (free at start, claimed by a winner)
	// rather than to waiting behind an earlier packet.
	freeAtStart [topology.NumPorts]bool
}

func newRouter(id topology.NodeID, mesh topology.Mesh, cfg Config, rng *sim.RNG) *Router {
	r := &Router{id: id, mesh: mesh, cfg: cfg, rng: rng}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if p != topology.Local && !mesh.HasLink(id, p) {
			continue
		}
		slots := make([]packetSlot, cfg.PacketBuffers)
		for s := range slots {
			slots[s].flits = make([]noc.DataFlit, 0, cfg.MaxPacketLen)
		}
		r.in[p] = inputState{exists: true, slots: slots, assembly: -1}
		r.out[p] = outputState{
			exists:   true,
			infinite: p == topology.Local,
			credits:  cfg.PacketBuffers,
			busyWith: -1,
		}
	}
	return r
}

// Tick advances the router one cycle.
func (r *Router) Tick(now sim.Cycle) {
	r.recvCredits(now)
	r.recvFlits(now)
	r.allocate(now)
	r.stream(now)
}

func (r *Router) recvCredits(now sim.Cycle) {
	for p := range r.out {
		o := &r.out[p]
		if !o.exists || o.creditIn == nil {
			continue
		}
		o.creditIn.RecvEach(now, func(noc.VCCredit) {
			o.credits++
			if o.credits > r.cfg.PacketBuffers {
				panic("packetswitch: packet credit overflow")
			}
		})
	}
}

func (r *Router) recvFlits(now sim.Cycle) {
	for p := range r.in {
		in := &r.in[p]
		if !in.exists || in.data == nil {
			continue
		}
		in.data.RecvEach(now, func(f noc.DataFlit) {
			if r.wf != nil && f.Type.IsHead() && f.Packet.Sampled {
				r.wf.Arrive(uint64(f.Packet.ID), 0, now)
			}
			if f.Type.IsHead() {
				slot := -1
				for s := range in.slots {
					if !in.slots[s].occupied {
						slot = s
						break
					}
				}
				if slot == -1 {
					panic(fmt.Sprintf("packetswitch: node %d in %s: head with no free packet buffer", r.id, topology.Port(p)))
				}
				if f.Packet.Len > r.cfg.MaxPacketLen {
					panic(fmt.Sprintf("packetswitch: packet of %d flits exceeds buffer capacity %d", f.Packet.Len, r.cfg.MaxPacketLen))
				}
				in.assembly = slot
				sl := &in.slots[slot]
				*sl = packetSlot{occupied: true, flits: sl.flits[:0], total: f.Packet.Len, headAt: now}
			}
			if in.assembly == -1 {
				panic("packetswitch: body flit with no packet under assembly")
			}
			sl := &in.slots[in.assembly]
			sl.flits = append(sl.flits, f)
			sl.received++
			sl.lastAt = now
			if f.Type.IsTail() {
				in.assembly = -1
			}
		})
	}
}

// eligible reports whether a slot may begin (or continue requesting) its
// output channel: routed after a 1-cycle decision, and — for store-and-
// forward — completely received.
func (r *Router) eligible(sl *packetSlot, now sim.Cycle) bool {
	if !sl.occupied || sl.received == 0 {
		return false
	}
	switch r.cfg.Mode {
	case StoreAndForward:
		return sl.received == sl.total && sl.lastAt < now
	default: // CutThrough
		return sl.headAt < now
	}
}

// allocate routes eligible packets and grants free output channels, one
// packet per output, with random arbitration. A grant requires a free packet
// buffer downstream, which is debited immediately — packet-sized allocation.
func (r *Router) allocate(now sim.Cycle) {
	r.cands = r.cands[:0]
	for p := range r.in {
		in := &r.in[p]
		if !in.exists {
			continue
		}
		for s := range in.slots {
			sl := &in.slots[s]
			if sl.granted || !r.eligible(sl, now) {
				if r.wf != nil && sl.occupied && !sl.granted {
					// Not yet a switch candidate: store-and-forward
					// assembly is a buffer stall; the 1-cycle decision
					// pipeline counts as arbitration latency.
					if r.cfg.Mode == StoreAndForward && sl.received < sl.total {
						r.markSlot(sl, waterfall.StageStall, now)
					} else {
						r.markSlot(sl, waterfall.StageArb, now)
					}
				}
				continue
			}
			if !sl.routed {
				route, ok := r.cfg.Routing.NextPort(r.mesh, r.id, sl.flits[0].Packet.Dst)
				if !ok {
					panic(fmt.Sprintf("packetswitch: node %d: destination %d unreachable", r.id, sl.flits[0].Packet.Dst))
				}
				sl.route = route
				sl.routed = true
			}
			r.cands = append(r.cands, p*len(in.slots)+s)
		}
	}
	for i := len(r.cands) - 1; i > 0; i-- {
		j := r.rng.Intn(i + 1)
		r.cands[i], r.cands[j] = r.cands[j], r.cands[i]
	}
	for p := range r.out {
		r.freeAtStart[p] = r.out[p].busyWith == -1
	}
	for _, c := range r.cands {
		p := c / r.cfg.PacketBuffers
		s := c % r.cfg.PacketBuffers
		sl := &r.in[p].slots[s]
		o := &r.out[sl.route]
		if o.busyWith != -1 {
			if r.wf != nil {
				if r.freeAtStart[sl.route] {
					// The channel was free this cycle and another packet
					// won it: a lost arbitration.
					r.markSlot(sl, waterfall.StageArb, now)
				} else {
					// Queued behind a packet holding the channel
					// head-to-tail.
					r.markSlot(sl, waterfall.StageStall, now)
				}
			}
			continue
		}
		if !o.infinite && o.credits == 0 {
			if r.wf != nil {
				r.markSlot(sl, waterfall.StageStall, now)
			}
			continue
		}
		o.busyWith = c
		if !o.infinite {
			o.credits--
		}
		sl.granted = true
	}
}

// stream sends one flit per granted packet per cycle, releasing the channel
// and the input buffer when the tail goes out.
func (r *Router) stream(now sim.Cycle) {
	for p := range r.out {
		o := &r.out[p]
		if !o.exists || o.busyWith == -1 {
			continue
		}
		ip := o.busyWith / r.cfg.PacketBuffers
		s := o.busyWith % r.cfg.PacketBuffers
		in := &r.in[ip]
		sl := &in.slots[s]
		if sl.sent >= sl.received {
			continue // cut-through bubble: waiting for the next flit
		}
		f := sl.flits[sl.sent]
		if r.wf != nil && sl.sent == 0 && f.Type.IsHead() && f.Packet.Sampled {
			r.wf.Depart(uint64(f.Packet.ID), 0, now, false)
		}
		o.data.Send(now, f)
		sl.sent++
		if sl.sent == sl.total {
			// Whole packet forwarded: free the buffer and channel,
			// return one packet credit upstream.
			o.busyWith = -1
			if in.creditOut != nil {
				in.creditOut.Send(now, noc.VCCredit{})
			}
			*sl = packetSlot{flits: sl.flits[:0]}
		}
	}
}

// markSlot charges one waiting cycle of the slot's buffered head to stage.
// Callers have already checked r.wf != nil.
func (r *Router) markSlot(sl *packetSlot, stage waterfall.Stage, now sim.Cycle) {
	f := sl.flits[0]
	if f.Type.IsHead() && f.Packet.Sampled {
		r.wf.Blocked(uint64(f.Packet.ID), stage, now)
	}
}

func (r *Router) bufferUsage() (used, capacity int) {
	for p := range r.in {
		if !r.in[p].exists {
			continue
		}
		for s := range r.in[p].slots {
			if r.in[p].slots[s].occupied {
				used += r.in[p].slots[s].received - r.in[p].slots[s].sent
			}
		}
		capacity += r.cfg.PacketBuffers * r.cfg.MaxPacketLen
	}
	return used, capacity
}

func (r *Router) poolUsage(p topology.Port) (used, capacity int) {
	in := &r.in[p]
	if !in.exists {
		return 0, 0
	}
	for s := range in.slots {
		if in.slots[s].occupied {
			used += in.slots[s].received - in.slots[s].sent
		}
	}
	return used, r.cfg.PacketBuffers * r.cfg.MaxPacketLen
}
