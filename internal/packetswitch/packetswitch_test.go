package packetswitch

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func testConfig(mode Mode) Config {
	return Config{Mode: mode, PacketBuffers: 2, MaxPacketLen: 8,
		LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}
}

func runOne(t *testing.T, mode Mode, src, dst topology.NodeID, length int) sim.Cycle {
	t.Helper()
	mesh := topology.NewMesh(4)
	var deliveredAt sim.Cycle = -1
	hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { deliveredAt = now }}
	net := New(mesh, testConfig(mode), 1, hooks)
	net.Offer(&noc.Packet{ID: 1, Src: src, Dst: dst, Len: length, CreatedAt: 0})
	for now := sim.Cycle(0); now < 2000 && deliveredAt < 0; now++ {
		net.Tick(now)
	}
	if deliveredAt < 0 {
		t.Fatalf("%s: packet undelivered", mode)
	}
	return deliveredAt
}

func TestBothModesDeliver(t *testing.T) {
	for _, mode := range []Mode{StoreAndForward, CutThrough} {
		runOne(t, mode, 0, 15, 5)
	}
}

// TestCutThroughBeatsStoreAndForward: the defining property of virtual
// cut-through [KerKle79] — latency does not serialize per hop on the whole
// packet.
func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	saf := runOne(t, StoreAndForward, 0, 15, 5)
	vct := runOne(t, CutThrough, 0, 15, 5)
	if vct >= saf {
		t.Fatalf("cut-through latency %d >= store-and-forward %d", vct, saf)
	}
	// Store-and-forward pays (packet serialization + link) per hop:
	// roughly hops*(L + tp + 1); cut-through pays hops*(tp + 1) + L.
	// Corner to corner is 6 hops on a 4x4 mesh.
	if saf < 60 {
		t.Errorf("store-and-forward latency %d implausibly low for 6 hops of 5-flit serialization", saf)
	}
}

// TestStoreAndForwardScalesWithPacketLength: SAF latency grows ~hops*extra
// per extra flit; cut-through grows ~1 per extra flit.
func TestStoreAndForwardScalesWithPacketLength(t *testing.T) {
	safShort := runOne(t, StoreAndForward, 0, 15, 2)
	safLong := runOne(t, StoreAndForward, 0, 15, 7)
	vctShort := runOne(t, CutThrough, 0, 15, 2)
	vctLong := runOne(t, CutThrough, 0, 15, 7)
	safGrowth := safLong - safShort
	vctGrowth := vctLong - vctShort
	// 5 extra flits over 7 hops (6 inter-router + ejection): SAF should
	// pay the serialization repeatedly; cut-through roughly once.
	if safGrowth < 3*vctGrowth {
		t.Errorf("SAF growth %d not clearly larger than cut-through growth %d", safGrowth, vctGrowth)
	}
	if vctGrowth > 12 {
		t.Errorf("cut-through growth %d for 5 extra flits; should pay serialization ~once", vctGrowth)
	}
}

func TestManyPacketsAllDeliveredBothModes(t *testing.T) {
	for _, mode := range []Mode{StoreAndForward, CutThrough} {
		mesh := topology.NewMesh(4)
		delivered := 0
		hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered++ }}
		net := New(mesh, testConfig(mode), 7, hooks)
		rng := sim.NewRNG(42)
		now := sim.Cycle(0)
		const packets = 300
		for i := 0; i < packets; i++ {
			src := topology.NodeID(rng.Intn(mesh.N()))
			dst := topology.NodeID(rng.Intn(mesh.N() - 1))
			if dst >= src {
				dst++
			}
			net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
			for j := 0; j < 4; j++ {
				net.Tick(now)
				now++
			}
		}
		for net.InFlightPackets() > 0 && now < 500000 {
			net.Tick(now)
			now++
		}
		if delivered != packets {
			t.Fatalf("%s delivered %d of %d", mode, delivered, packets)
		}
	}
}

func TestHeavyLoadSurvivesAndDrains(t *testing.T) {
	for _, mode := range []Mode{StoreAndForward, CutThrough} {
		mesh := topology.NewMesh(4)
		hooks := &noc.Hooks{}
		net := New(mesh, testConfig(mode), 21, hooks)
		rng := sim.NewRNG(77)
		now := sim.Cycle(0)
		offered := 0
		for ; now < 2000; now++ {
			for id := 0; id < mesh.N(); id++ {
				if rng.Bool(0.15) {
					dst := topology.NodeID(rng.Intn(mesh.N() - 1))
					if dst >= topology.NodeID(id) {
						dst++
					}
					net.Offer(&noc.Packet{ID: noc.PacketID(offered), Src: topology.NodeID(id), Dst: dst, Len: 5, CreatedAt: now})
					offered++
				}
			}
			net.Tick(now)
		}
		for net.InFlightPackets() > 0 && now < 2000000 {
			net.Tick(now)
			now++
		}
		if got := net.InFlightPackets(); got != 0 {
			t.Fatalf("%s failed to drain: %d in flight", mode, got)
		}
	}
}

func TestOversizePacketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversize packet did not panic")
		}
	}()
	mesh := topology.NewMesh(4)
	net := New(mesh, Config{MaxPacketLen: 4}, 1, nil)
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 9, CreatedAt: 0})
	for now := sim.Cycle(0); now < 100; now++ {
		net.Tick(now)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(mode Mode) map[noc.PacketID]sim.Cycle {
		mesh := topology.NewMesh(4)
		delivered := map[noc.PacketID]sim.Cycle{}
		hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered[p.ID] = now }}
		net := New(mesh, testConfig(mode), 5, hooks)
		rng := sim.NewRNG(3)
		now := sim.Cycle(0)
		for i := 0; i < 120; i++ {
			src := topology.NodeID(rng.Intn(mesh.N()))
			dst := topology.NodeID(rng.Intn(mesh.N() - 1))
			if dst >= src {
				dst++
			}
			net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 4, CreatedAt: now})
			net.Tick(now)
			now++
		}
		for net.InFlightPackets() > 0 && now < 300000 {
			net.Tick(now)
			now++
		}
		return delivered
	}
	for _, mode := range []Mode{StoreAndForward, CutThrough} {
		a, b := run(mode), run(mode)
		for id, ca := range a {
			if b[id] != ca {
				t.Fatalf("%s: packet %d at %d vs %d across identical runs", mode, id, ca, b[id])
			}
		}
	}
}

func TestBufferUsageAccounting(t *testing.T) {
	mesh := topology.NewMesh(4)
	net := New(mesh, testConfig(CutThrough), 11, nil)
	rng := sim.NewRNG(13)
	now := sim.Cycle(0)
	for i := 0; i < 200; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		net.Tick(now)
		now++
		for id := 0; id < mesh.N(); id++ {
			used, capacity := net.BufferUsage(topology.NodeID(id))
			if used < 0 || used > capacity {
				t.Fatalf("node %d usage %d outside [0, %d]", id, used, capacity)
			}
		}
	}
}
