package packetswitch

import (
	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// ni injects packets over the local link, one packet at a time (the FIFO
// source used throughout this repository), debiting a packet-sized credit at
// the router's injection input per packet.
type ni struct {
	cfg   Config
	hooks *noc.Hooks
	wf    *waterfall.Ledger

	queue   []*noc.Packet
	current []noc.DataFlit
	next    int
	credits int

	data     *sim.Pipe[noc.DataFlit]
	creditIn *sim.Pipe[noc.VCCredit]
}

func newNI(cfg Config, hooks *noc.Hooks) *ni {
	return &ni{cfg: cfg, hooks: hooks, credits: cfg.PacketBuffers}
}

func (n *ni) offer(p *noc.Packet) { n.queue = append(n.queue, p) }

func (n *ni) queueLen() int { return len(n.queue) }

func (n *ni) Tick(now sim.Cycle) {
	n.creditIn.RecvEach(now, func(noc.VCCredit) {
		n.credits++
		if n.credits > n.cfg.PacketBuffers {
			panic("packetswitch: NI credit overflow")
		}
	})
	if n.current == nil && len(n.queue) > 0 && n.credits > 0 {
		p := n.queue[0]
		copy(n.queue, n.queue[1:])
		n.queue[len(n.queue)-1] = nil
		n.queue = n.queue[:len(n.queue)-1]
		n.credits--
		p.InjectedAt = now
		if n.wf != nil && p.Sampled {
			n.wf.InjectStart(uint64(p.ID), 0, p.CreatedAt, now)
		}
		n.current = noc.DataFlits(p)
		n.next = 0
	}
	if n.current != nil {
		if f := n.current[n.next]; n.wf != nil && n.next == 0 && f.Packet.Sampled {
			n.wf.HeadWire(uint64(f.Packet.ID), 0, now)
		}
		n.data.Send(now, n.current[n.next])
		n.hooks.Injected(now)
		n.next++
		if n.next == len(n.current) {
			n.current = nil
		}
	}
}

// sink reassembles ejected packets; flits identify themselves (head/tail
// framing on the wire, as in the wormhole and VC baselines).
type sink struct {
	data  *sim.Pipe[noc.DataFlit]
	got   map[noc.PacketID]int
	hooks *noc.Hooks
	wf    *waterfall.Ledger
}

func newSink(hooks *noc.Hooks) *sink {
	return &sink{got: make(map[noc.PacketID]int), hooks: hooks}
}

func (s *sink) Tick(now sim.Cycle) {
	s.data.RecvEach(now, func(f noc.DataFlit) {
		s.hooks.Ejected(now)
		if s.wf != nil && f.Type.IsHead() && f.Packet.Sampled {
			s.wf.Eject(uint64(f.Packet.ID), 0, now)
		}
		s.got[f.Packet.ID]++
		if s.got[f.Packet.ID] == f.Packet.Len {
			delete(s.got, f.Packet.ID)
			s.hooks.Delivered(f.Packet, now)
		}
	})
}

// Network is a mesh of store-and-forward or cut-through routers.
type Network struct {
	mesh  topology.Mesh
	cfg   Config
	hooks *noc.Hooks

	routers []*Router
	nis     []*ni
	sinks   []*sink

	offered   int64
	delivered int64
}

var _ noc.Network = (*Network)(nil)
var _ metrics.Attachable = (*Network)(nil)

// AttachProbe hands the observability probe to every component. The packet-
// switched baselines only consume the latency-stage ledger; the flit-level
// channel/buffer counters stay with the flit-granularity fabrics.
func (n *Network) AttachProbe(p *metrics.Probe) {
	p.Init(n.mesh.Radix())
	wf := p.Waterfall()
	for _, r := range n.routers {
		r.wf = wf
	}
	for _, x := range n.nis {
		x.wf = wf
	}
	for _, s := range n.sinks {
		s.wf = wf
	}
}

// New assembles a packet-switched network over the given mesh.
func New(mesh topology.Mesh, cfg Config, seed uint64, hooks *noc.Hooks) *Network {
	cfg = cfg.withDefaults()
	cfg.validate()
	if hooks == nil {
		hooks = &noc.Hooks{}
	}
	n := &Network{mesh: mesh, cfg: cfg}

	inner := *hooks
	wrapped := inner
	wrapped.PacketDelivered = func(p *noc.Packet, now sim.Cycle) {
		n.delivered++
		if inner.PacketDelivered != nil {
			inner.PacketDelivered(p, now)
		}
	}
	n.hooks = &wrapped

	root := sim.NewRNG(seed)
	n.routers = make([]*Router, mesh.N())
	n.nis = make([]*ni, mesh.N())
	n.sinks = make([]*sink, mesh.N())
	for id := 0; id < mesh.N(); id++ {
		n.routers[id] = newRouter(topology.NodeID(id), mesh, cfg, root.Split())
	}
	for id := 0; id < mesh.N(); id++ {
		n.nis[id] = newNI(cfg, n.hooks)
		n.sinks[id] = newSink(n.hooks)
	}
	n.wire()
	return n
}

func (n *Network) wire() {
	cfg := n.cfg
	for id := 0; id < n.mesh.N(); id++ {
		r := n.routers[id]
		for p := topology.Port(0); p < topology.Local; p++ {
			nb, ok := n.mesh.Neighbor(topology.NodeID(id), p)
			if !ok {
				continue
			}
			far := n.routers[nb]
			op := p.Opposite()
			data := sim.NewPipe[noc.DataFlit](cfg.LinkLatency, 1)
			// Several packet buffers of one input can release in the
			// same cycle (toward different outputs), so the credit
			// wire carries up to PacketBuffers credits per cycle.
			credit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.PacketBuffers)
			r.out[p].data = data
			r.out[p].creditIn = credit
			far.in[op].data = data
			far.in[op].creditOut = credit
		}
		inj := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		injCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.PacketBuffers)
		n.nis[id].data = inj
		n.nis[id].creditIn = injCredit
		r.in[topology.Local].data = inj
		r.in[topology.Local].creditOut = injCredit
		ej := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		r.out[topology.Local].data = ej
		n.sinks[id].data = ej
	}
}

// Offer implements noc.Network.
func (n *Network) Offer(p *noc.Packet) {
	n.offered++
	n.nis[p.Src].offer(p)
}

// Tick implements noc.Network.
func (n *Network) Tick(now sim.Cycle) {
	for _, x := range n.nis {
		x.Tick(now)
	}
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, s := range n.sinks {
		s.Tick(now)
	}
}

// SourceQueueLen implements noc.Network.
func (n *Network) SourceQueueLen() int {
	total := 0
	for _, x := range n.nis {
		total += x.queueLen()
	}
	return total
}

// InFlightPackets implements noc.Network.
func (n *Network) InFlightPackets() int {
	return int(n.offered - n.delivered)
}

// BufferUsage implements noc.Network.
func (n *Network) BufferUsage(id topology.NodeID) (used, capacity int) {
	return n.routers[id].bufferUsage()
}

// PoolUsage implements noc.Network.
func (n *Network) PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int) {
	return n.routers[id].poolUsage(port)
}
