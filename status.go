package frfc

import (
	"context"
	"time"

	"frfc/internal/status"
)

// StatusServer serves a live, read-only HTTP view of running work: a JSON
// progress snapshot on /status and Prometheus text exposition of the merged
// per-router counter registry on /metrics.
//
// Feed it by setting ParallelOptions.Status on a campaign (RunJobs,
// SweepParallel, SaturationSearch) or by passing it to RunLive for a single
// simulation. Feeding is observation-only — snapshots are taken from cloned
// or handed-over data under the server's own lock — so results remain
// bit-identical with the server enabled.
type StatusServer struct {
	srv *status.Server
}

// ServeStatus starts a status server on addr ("host:port"; an empty host
// binds every interface, port 0 picks a free one). The second return value
// is the address actually bound — with port 0 that is the resolved port, so
// callers can reach the server (and release it with Shutdown or Close)
// without a separate Addr round trip. The server runs until Shutdown or
// Close.
func ServeStatus(addr string) (*StatusServer, string, error) {
	s, err := status.Serve(addr)
	if err != nil {
		return nil, "", err
	}
	return &StatusServer{srv: s}, s.Addr(), nil
}

// Addr reports the address the server is listening on.
func (s *StatusServer) Addr() string { return s.srv.Addr() }

// Shutdown stops the server gracefully: the listener closes at once (freeing
// the port), then in-flight requests get up to timeout to finish before
// being cut. A timeout of 0 waits indefinitely.
func (s *StatusServer) Shutdown(timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return s.srv.Shutdown(ctx)
}

// Close stops the server immediately, dropping in-flight requests.
func (s *StatusServer) Close() error { return s.srv.Close() }
