package frfc

import (
	"frfc/internal/status"
)

// StatusServer serves a live, read-only HTTP view of running work: a JSON
// progress snapshot on /status and Prometheus text exposition of the merged
// per-router counter registry on /metrics.
//
// Feed it by setting ParallelOptions.Status on a campaign (RunJobs,
// SweepParallel, SaturationSearch) or by passing it to RunLive for a single
// simulation. Feeding is observation-only — snapshots are taken from cloned
// or handed-over data under the server's own lock — so results remain
// bit-identical with the server enabled.
type StatusServer struct {
	srv *status.Server
}

// ServeStatus starts a status server on addr ("host:port"; an empty host
// binds every interface, port 0 picks a free one — see Addr). The server
// runs until Close.
func ServeStatus(addr string) (*StatusServer, error) {
	s, err := status.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &StatusServer{srv: s}, nil
}

// Addr reports the address the server is listening on.
func (s *StatusServer) Addr() string { return s.srv.Addr() }

// Close stops the server immediately.
func (s *StatusServer) Close() error { return s.srv.Close() }
