package frfc

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func stripWaterfall(r Result) Result {
	r.WaterfallPackets, r.WaterfallTotal = 0, 0
	r.WaterfallQueue, r.WaterfallReserve, r.WaterfallArb = 0, 0, 0
	r.WaterfallStall, r.WaterfallSched, r.WaterfallLink = 0, 0, 0
	r.WaterfallDrain = 0
	return r
}

// TestWaterfallRunObserved covers the public latency-provenance surface:
// enabling ObserverOptions.Waterfall populates the Result's Waterfall*
// summary with an exact stage partition, the exports render, and the shared
// fields stay bit-identical to an unobserved Run.
func TestWaterfallRunObserved(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"FR6", FR6(FastControl, 5)},
		{"VC8", VC8(FastControl, 5)},
		{"WH", WormholeSpec(FastControl, 8, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := smallSpec(t, tc.spec).WithCheck(true)
			obs := NewObserver(ObserverOptions{Waterfall: true})
			r := RunObserved(spec, 0.3, obs)
			if r.WaterfallPackets == 0 || r.WaterfallTotal == 0 {
				t.Fatalf("no waterfall data: packets=%d total=%d", r.WaterfallPackets, r.WaterfallTotal)
			}
			sum := r.WaterfallQueue + r.WaterfallReserve + r.WaterfallArb +
				r.WaterfallStall + r.WaterfallSched + r.WaterfallLink + r.WaterfallDrain
			if sum != r.WaterfallTotal {
				t.Fatalf("stage sum %d != total %d", sum, r.WaterfallTotal)
			}

			// Latency provenance is observation-only: the shared fields
			// must match an unobserved Run bit-for-bit.
			plain := Run(spec, 0.3)
			if !reflect.DeepEqual(stripWaterfall(r), plain) {
				t.Errorf("waterfall result diverged from plain Run:\nwf:    %+v\nplain: %+v", stripWaterfall(r), plain)
			}

			var wj bytes.Buffer
			if err := obs.WriteWaterfallJSON(&wj); err != nil {
				t.Fatalf("WriteWaterfallJSON: %v", err)
			}
			var wf struct {
				Packets int64 `json:"packets"`
				Stages  []struct {
					Stage  string `json:"stage"`
					Cycles int64  `json:"cycles"`
				} `json:"stages"`
			}
			if err := json.Unmarshal(wj.Bytes(), &wf); err != nil {
				t.Fatalf("waterfall JSON invalid: %v", err)
			}
			if wf.Packets != r.WaterfallPackets || len(wf.Stages) != 7 {
				t.Fatalf("waterfall JSON header wrong: packets=%d stages=%d", wf.Packets, len(wf.Stages))
			}

			var csv bytes.Buffer
			if err := obs.WriteWaterfallCSV(&csv); err != nil {
				t.Fatalf("WriteWaterfallCSV: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
			if len(lines) != 8 || !strings.HasPrefix(lines[0], "stage,") {
				t.Fatalf("waterfall CSV is not header + 7 rows:\n%s", csv.String())
			}

			if s := obs.WaterfallSummary(); !strings.Contains(s, "queue") || !strings.Contains(s, "drain") {
				t.Fatalf("WaterfallSummary = %q", s)
			}
		})
	}
}

// TestWaterfallErrorsWhenNotCollecting: the waterfall exports must fail
// loudly — not silently emit nothing — on an observer without the ledger.
func TestWaterfallErrorsWhenNotCollecting(t *testing.T) {
	obs := NewObserver(ObserverOptions{Metrics: true})
	var buf bytes.Buffer
	if err := obs.WriteWaterfallJSON(&buf); err == nil || !strings.Contains(err.Error(), "Waterfall") {
		t.Errorf("WriteWaterfallJSON err = %v", err)
	}
	if err := obs.WriteWaterfallCSV(&buf); err == nil || !strings.Contains(err.Error(), "Waterfall") {
		t.Errorf("WriteWaterfallCSV err = %v", err)
	}
	if s := obs.WaterfallSummary(); s != "" {
		t.Errorf("WaterfallSummary on plain observer = %q", s)
	}
	var nilObs *Observer
	if err := nilObs.WriteWaterfallJSON(&buf); err == nil {
		t.Errorf("nil observer WriteWaterfallJSON succeeded")
	}
}

// TestWaterfallCampaignBitIdentical: ParallelOptions.Waterfall must not
// disturb the worker-count determinism contract.
func TestWaterfallCampaignBitIdentical(t *testing.T) {
	spec := smallSpec(t, FR6(FastControl, 5))
	jobs := []Job{
		{Spec: spec, Load: 0.2},
		{Spec: spec, Load: 0.4},
		{Spec: smallSpec(t, VC8(FastControl, 5)), Load: 0.3},
	}
	serial, err := RunJobs(context.Background(), jobs, ParallelOptions{Workers: 1, Waterfall: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunJobs(context.Background(), jobs, ParallelOptions{Workers: 4, Waterfall: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Err != "" || parallel[i].Err != "" {
			t.Fatalf("job %d failed: serial=%q parallel=%q", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.WaterfallPackets == 0 {
			t.Errorf("job %d: no waterfall summary in campaign result", i)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("job %d diverged between 1 and 4 workers:\n1w: %+v\n4w: %+v",
				i, serial[i].Result, parallel[i].Result)
		}
	}
}
