// Package frfc is a cycle-accurate flit-level simulator of flit-reservation
// flow control (Peh & Dally, HPCA 2000) and the baselines of its lineage —
// virtual-channel, wormhole, store-and-forward, virtual cut-through, and
// circuit switching — on a k-ary 2-mesh.
//
// In flit-reservation flow control, small control flits traverse a separate
// control network ahead of the wide data flits, reserving buffers and channel
// bandwidth cycle by cycle; data flits then move through the network on a
// pre-arranged schedule, with zero buffer turnaround and no per-hop routing
// or arbitration latency. The package exposes the paper's named experimental
// configurations (FR6, FR13, VC8, VC16, VC32), its two physical wirings
// (fast control wires; leading control on uniform wires), a measurement
// harness implementing the paper's protocol, and the analytic storage and
// bandwidth overhead models of its Tables 1 and 2.
//
// A minimal use:
//
//	spec := frfc.FR6(frfc.FastControl, 5)
//	result := frfc.Run(spec, 0.50) // offered load: 50% of capacity
//	fmt.Println(result.AvgLatency)
package frfc

import (
	"fmt"

	"frfc/internal/core"
	"frfc/internal/experiment"
	"frfc/internal/sim"
	"frfc/internal/traffic"
	"frfc/internal/vcrouter"
)

// Wiring selects the paper's two physical configurations.
type Wiring string

// Wirings. FastControl models on-chip control and credit wires four times
// faster than the data wires (control/credit links 1 cycle, data links 4).
// LeadingControl models uniform 1-cycle wires with control flits injected
// ahead of their data flits.
const (
	FastControl    Wiring = Wiring(experiment.FastControl)
	LeadingControl Wiring = Wiring(experiment.LeadingControl)
)

// Spec is a fully described network configuration plus measurement protocol.
// Build one with a preset constructor (FR6, VC8, ...) or Custom, refine it
// with the With* methods, and pass it to Run, Sweep, or SaturationThroughput.
// Spec values are immutable; the With* methods return modified copies.
type Spec struct {
	inner experiment.Spec
}

// Name reports the configuration's display name.
func (s Spec) Name() string { return s.inner.Name }

// FR6 is the paper's 6-buffer flit-reservation configuration (2 control VCs
// of 3 flits, scheduling horizon 32), storage-matched to VC8.
func FR6(w Wiring, packetLen int) Spec {
	return Spec{inner: experiment.FR6(experiment.Wiring(w), packetLen)}
}

// FR13 is the paper's 13-buffer flit-reservation configuration (4 control
// VCs of 3 flits), storage-matched to VC16.
func FR13(w Wiring, packetLen int) Spec {
	return Spec{inner: experiment.FR13(experiment.Wiring(w), packetLen)}
}

// FRLead is FR6 under leading control with control flits injected lead
// cycles ahead of their data flits (Figure 8 uses leads of 1, 2 and 4).
func FRLead(lead int, packetLen int) Spec {
	return Spec{inner: experiment.FRLead(sim.Cycle(lead), packetLen)}
}

// VC8 is virtual-channel flow control with 8 buffers per input (2 VCs × 4).
func VC8(w Wiring, packetLen int) Spec {
	return Spec{inner: experiment.VC8(experiment.Wiring(w), packetLen)}
}

// VC16 is virtual-channel flow control with 16 buffers per input (4 VCs × 4).
func VC16(w Wiring, packetLen int) Spec {
	return Spec{inner: experiment.VC16(experiment.Wiring(w), packetLen)}
}

// VC32 is virtual-channel flow control with 32 buffers per input (8 VCs × 4).
func VC32(w Wiring, packetLen int) Spec {
	return Spec{inner: experiment.VC32(experiment.Wiring(w), packetLen)}
}

// WormholeSpec is wormhole flow control [DalSei86] with the given flit
// buffer depth per input — the pre-virtual-channel baseline of the paper's
// related-work lineage.
func WormholeSpec(w Wiring, bufferDepth, packetLen int) Spec {
	return Spec{inner: experiment.WormholeSpec(fmt.Sprintf("WH%d", bufferDepth), experiment.Wiring(w), bufferDepth, packetLen)}
}

// StoreAndForwardSpec is store-and-forward flow control with the given
// packet buffers per input: whole packets are received before being
// forwarded, the oldest method in the paper's Section 2 lineage.
func StoreAndForwardSpec(w Wiring, packetBuffers, packetLen int) Spec {
	return Spec{inner: experiment.PacketSwitchSpec(fmt.Sprintf("SAF%d", packetBuffers), experiment.StoreForward, experiment.Wiring(w), packetBuffers, packetLen)}
}

// CutThroughSpec is virtual cut-through flow control [KerKle79]: forwarding
// begins as soon as the header arrives, but buffers and channels are still
// allocated in packet-sized units.
func CutThroughSpec(w Wiring, packetBuffers, packetLen int) Spec {
	return Spec{inner: experiment.PacketSwitchSpec(fmt.Sprintf("VCT%d", packetBuffers), experiment.CutThrough, experiment.Wiring(w), packetBuffers, packetLen)}
}

// CircuitSpec is circuit switching (the substrate of the wave-switching
// hybrid the paper reviews): a probe on fast control wires reserves an
// exclusive path, the message streams over it unbuffered, and the tail tears
// it down. Strong on very long messages, weak on short ones — the setup must
// amortize.
func CircuitSpec(w Wiring, packetLen int) Spec {
	return Spec{inner: experiment.CircuitSpec("CS", experiment.Wiring(w), packetLen)}
}

// Options describes a custom configuration for Custom. Zero fields take the
// paper's defaults.
type Options struct {
	// FlitReservation selects the flow-control method: true for flit
	// reservation, false for virtual channels.
	FlitReservation bool

	MeshRadix int // k for the k×k mesh (default 8)
	PacketLen int // data flits per packet (default 5)

	// Flit-reservation knobs.
	DataBuffers       int // pooled data buffers per input (default 6)
	CtrlVCs           int // control virtual channels (default 2)
	CtrlBufPerVC      int // control buffers per VC (default 3)
	Horizon           int // scheduling horizon in cycles (default 32)
	LeadsPerCtrl      int // data flits led per control flit (default 1)
	CtrlFlitsPerCycle int // control link bandwidth (default 2)
	LeadCycles        int // control lead at injection (default 0)
	AllOrNothing      bool
	// TrackEagerTransfers runs the Figure 10 shadow ledger; read the
	// result with EagerTransfers after a Run.
	TrackEagerTransfers bool
	// DataFaultRate destroys each inter-router data flit transmission
	// with this probability, exercising the Section 5 error-recovery
	// behavior (dropped flits, consistent tables, lost-packet detection
	// at the destination). Flit-reservation configurations only.
	DataFaultRate float64
	// CtrlFaultRate corrupts each inter-router control flit transmission
	// with this probability. Corrupted control flits are recovered by
	// modeled link-level retransmission: they arrive late (two extra link
	// traversals per corruption), never lost. Must be below 1.
	CtrlFaultRate float64
	// RetryLimit enables end-to-end packet recovery: when a destination
	// detects a lost packet it notifies the source, which re-injects the
	// packet up to RetryLimit times before abandoning it. 0 (default)
	// disables retry — losses are detected but final.
	RetryLimit int
	// RetryBackoffBase spaces retries exponentially: attempt n is
	// re-offered base<<n cycles after its loss notification (default 64).
	RetryBackoffBase int
	// RetryTimeout, when nonzero, also re-offers a packet whose fate is
	// unknown this many cycles after its injection completed — recovery
	// insurance against a lost notification.
	RetryTimeout int
	// NackLatency is the modeled delay of a delivery/loss notification
	// from destination back to source (default 16).
	NackLatency int
	// WatchdogCycles, when nonzero, arms a no-progress watchdog: if no
	// flit moves for this many cycles while packets are in flight and no
	// recovery action is pending, a diagnostic snapshot of every router
	// and interface is produced (and the run is flagged).
	WatchdogCycles int

	// BER is the per-flit bit-error probability on inter-router links —
	// the corruption mode distinct from loss: the flit is delivered on
	// time with wrong payload, and only the modeled hop CRC or the
	// end-to-end check can notice. Works for both flow-control methods.
	BER float64
	// CrcBits is the modeled per-hop CRC width c: a corrupted flit is
	// detected with probability 1 - 2^-c. 0 defaults to 16 when bit errors
	// are in play; negative disables hop detection so every corruption
	// escapes to the destination.
	CrcBits int
	// E2ECheck arms the end-to-end payload checksum at the destination
	// interface: a packet that completes with corrupted payload is treated
	// as lost — NACKed and retried under RetryLimit — instead of delivered.
	// Flit-reservation configurations only.
	E2ECheck bool
	// ReclaimCycles bounds how long a parked data flit may wait for a
	// reservation that never materializes (the wake of an escaped-corrupt
	// control flit) before the router reclaims its buffer into the loss
	// path. 0 defaults to 8× the scheduling horizon when bit errors are in
	// play. Flit-reservation configurations only.
	ReclaimCycles int
	// ChaosIntensity, in (0, 1], expands a deterministic chaos campaign —
	// composed soft loss, background bit errors, link flaps, corruption
	// spikes and (at >= 0.75) router kills — and installs it into the run,
	// overwriting Scenario and the fault rates. The plan is a pure function
	// of (intensity, horizon, seed). Flit-reservation configurations only.
	ChaosIntensity float64
	// ChaosHorizon is the cycle window chaos events land in (0 takes the
	// default); ChaosSeed drives the plan generator.
	ChaosHorizon int
	ChaosSeed    uint64

	// Virtual-channel knobs.
	VCs        int // virtual channels per physical channel (default 2)
	BufPerVC   int // flit queue depth per VC (default 4)
	SharedPool bool

	// Wiring (cycles; defaults depend on Wiring).
	Wiring          Wiring
	DataLinkLatency int
	CtrlLinkLatency int
	CreditLatency   int
	LocalLatency    int

	// Traffic pattern: "uniform" (default), "transpose", "bitcomp",
	// "tornado", "neighbor", "bitrev", "shuffle".
	Pattern string
	// Bernoulli switches injection from the paper's constant-rate source
	// to a Bernoulli process.
	Bernoulli bool

	// Routing selects the routing algorithm: "xy" (default), "yx", or
	// "table" (fault-aware per-node lookup tables, recomputed on topology
	// events). Flit-reservation configurations only.
	Routing string
	// Scenario is a hard-fault schedule in the scenario grammar —
	// semicolon-separated events "down A-B @C", "up A-B @C", "kill N @C" —
	// applied deterministically mid-run. Scenarios force table routing.
	// Flit-reservation configurations only.
	Scenario string
	// Check runs the per-cycle invariant checker (credit conservation,
	// table accounting, severed-link silence); it panics on first
	// violation. Observation-only: results are unchanged.
	Check bool
}

// Custom builds a Spec from explicit options. It returns an error for
// unknown pattern names; structural misconfiguration (e.g. zero buffers)
// panics inside Run, as it indicates a programming error.
func Custom(name string, o Options) (Spec, error) {
	w := o.Wiring
	if w == "" {
		w = FastControl
	}
	var inner experiment.Spec
	if o.FlitReservation {
		base := experiment.FR6(experiment.Wiring(w), orDefault(o.PacketLen, 5))
		cfg := base.FR
		cfg = applyFR(cfg, o)
		inner = base
		inner.FR = cfg
	} else {
		base := experiment.VC8(experiment.Wiring(w), orDefault(o.PacketLen, 5))
		cfg := base.VC
		cfg = applyVC(cfg, o)
		inner = base
		inner.VC = cfg
	}
	inner.Name = name
	if o.MeshRadix != 0 {
		inner.MeshRadix = o.MeshRadix
	}
	inner.Bernoulli = o.Bernoulli
	if o.Pattern != "" {
		p, err := patternByName(o.Pattern)
		if err != nil {
			return Spec{}, err
		}
		inner.Pattern = p
	}
	inner.Routing = o.Routing
	inner.Check = o.Check
	if o.Scenario != "" {
		events, err := core.ParseScenario(o.Scenario)
		if err != nil {
			return Spec{}, err
		}
		inner.Faults = events
	}
	inner.ChaosIntensity = o.ChaosIntensity
	inner.ChaosHorizon = sim.Cycle(o.ChaosHorizon)
	inner.ChaosSeed = o.ChaosSeed
	return Spec{inner: inner}, nil
}

func applyFR(cfg core.Config, o Options) core.Config {
	if o.DataBuffers != 0 {
		cfg.DataBuffers = o.DataBuffers
	}
	if o.CtrlVCs != 0 {
		cfg.CtrlVCs = o.CtrlVCs
	}
	if o.CtrlBufPerVC != 0 {
		cfg.CtrlBufPerVC = o.CtrlBufPerVC
	}
	if o.Horizon != 0 {
		cfg.Horizon = sim.Cycle(o.Horizon)
	}
	if o.LeadsPerCtrl != 0 {
		cfg.LeadsPerCtrl = o.LeadsPerCtrl
	}
	if o.CtrlFlitsPerCycle != 0 {
		cfg.CtrlFlitsPerCycle = o.CtrlFlitsPerCycle
	}
	if o.LeadCycles != 0 {
		cfg.LeadCycles = sim.Cycle(o.LeadCycles)
	}
	if o.DataLinkLatency != 0 {
		cfg.DataLinkLatency = sim.Cycle(o.DataLinkLatency)
	}
	if o.CtrlLinkLatency != 0 {
		cfg.CtrlLinkLatency = sim.Cycle(o.CtrlLinkLatency)
	}
	if o.CreditLatency != 0 {
		cfg.CreditLatency = sim.Cycle(o.CreditLatency)
	}
	if o.LocalLatency != 0 {
		cfg.LocalLatency = sim.Cycle(o.LocalLatency)
	}
	cfg.AllOrNothing = o.AllOrNothing
	cfg.TrackEagerTransfers = o.TrackEagerTransfers
	cfg.DataFaultRate = o.DataFaultRate
	cfg.CtrlFaultRate = o.CtrlFaultRate
	cfg.RetryLimit = o.RetryLimit
	cfg.RetryBackoffBase = sim.Cycle(o.RetryBackoffBase)
	cfg.RetryTimeout = sim.Cycle(o.RetryTimeout)
	cfg.NackLatency = sim.Cycle(o.NackLatency)
	cfg.WatchdogCycles = sim.Cycle(o.WatchdogCycles)
	cfg.BER = o.BER
	cfg.CrcBits = o.CrcBits
	cfg.E2ECheck = o.E2ECheck
	cfg.ReclaimCycles = sim.Cycle(o.ReclaimCycles)
	return cfg
}

func applyVC(cfg vcrouter.Config, o Options) vcrouter.Config {
	if o.VCs != 0 {
		cfg.NumVCs = o.VCs
	}
	if o.BufPerVC != 0 {
		cfg.BufPerVC = o.BufPerVC
	}
	cfg.SharedPool = o.SharedPool
	cfg.BER = o.BER
	cfg.CrcBits = o.CrcBits
	if o.DataLinkLatency != 0 {
		cfg.LinkLatency = sim.Cycle(o.DataLinkLatency)
	}
	if o.CreditLatency != 0 {
		cfg.CreditLatency = sim.Cycle(o.CreditLatency)
	}
	if o.LocalLatency != 0 {
		cfg.LocalLatency = sim.Cycle(o.LocalLatency)
	}
	return cfg
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// patternByName resolves a traffic-pattern name for Custom.
func patternByName(name string) (traffic.Pattern, error) {
	switch name {
	case "uniform", "":
		return traffic.Uniform{}, nil
	case "transpose":
		return traffic.Transpose{}, nil
	case "bitcomp":
		return traffic.BitComplement{}, nil
	case "tornado":
		return traffic.Tornado{}, nil
	case "neighbor":
		return traffic.Neighbor{}, nil
	case "bitrev":
		return traffic.BitReverse{}, nil
	case "shuffle":
		return traffic.Shuffle{}, nil
	default:
		return nil, fmt.Errorf("frfc: unknown traffic pattern %q", name)
	}
}

// WithSeed returns the spec with a different random seed.
func (s Spec) WithSeed(seed uint64) Spec {
	s.inner.Seed = seed
	return s
}

// WithSampling returns the spec with the given measurement sample size and
// minimum warm-up length (cycles).
func (s Spec) WithSampling(samplePackets int, warmupCycles int) Spec {
	s.inner = s.inner.Scaled(samplePackets, sim.Cycle(warmupCycles))
	return s
}

// PaperScale returns the spec with the paper's full measurement protocol:
// at least 10,000 warm-up cycles and 100,000 sampled packets.
func (s Spec) PaperScale() Spec {
	s.inner = s.inner.PaperScale()
	return s
}

// WithMeshRadix returns the spec on a k×k mesh.
func (s Spec) WithMeshRadix(k int) Spec {
	s.inner.MeshRadix = k
	return s
}

// WithName returns the spec relabeled.
func (s Spec) WithName(name string) Spec {
	s.inner.Name = name
	return s
}

// WithRetry returns the spec with the end-to-end retry budget: a destination
// that detects a lost packet notifies the source, which re-injects it up to
// limit times. Ignored by non-flit-reservation specs.
func (s Spec) WithRetry(limit int) Spec {
	s.inner.FR.RetryLimit = limit
	return s
}

// WithRouting returns the spec routed by the named algorithm: "xy" (the
// default dimension order), "yx", or "table" (fault-aware per-node lookup
// tables). Flit-reservation specs only; Run panics otherwise.
func (s Spec) WithRouting(name string) Spec {
	s.inner.Routing = name
	return s
}

// WithScenario returns the spec with a hard-fault schedule parsed from the
// scenario grammar — semicolon-separated events "down A-B @C", "up A-B @C",
// "kill N @C" — applied deterministically mid-run. The scenario rides the
// spec, so harness campaigns replay it bit-identically on any worker count.
// Flit-reservation specs only; Run panics otherwise.
func (s Spec) WithScenario(scenario string) (Spec, error) {
	events, err := core.ParseScenario(scenario)
	if err != nil {
		return Spec{}, err
	}
	s.inner.Faults = events
	return s, nil
}

// WithCheck returns the spec with correctness checking enabled; a violation
// panics with a diagnostic. Observation-only — results are unchanged. On any
// substrate it arms the latency ledger's strict stage-conservation assertion
// (every decomposed packet's stages must sum exactly to its measured
// latency); on flit-reservation specs it additionally enables the per-cycle
// in-fabric invariant checker.
func (s Spec) WithCheck(on bool) Spec {
	s.inner.Check = on
	return s
}

// WithBER returns the spec with a per-flit bit-error probability on
// inter-router links: each flit is delivered on time but corrupted with this
// probability, and only the modeled hop CRC (see WithCRC) or the end-to-end
// check (see WithE2ECheck) can notice. Works for flit-reservation and
// virtual-channel specs.
func (s Spec) WithBER(ber float64) Spec {
	s.inner.FR.BER = ber
	s.inner.VC.BER = ber
	return s
}

// WithCRC returns the spec with a modeled per-hop CRC of the given width:
// a corrupted flit is detected at each hop with probability 1 - 2^-bits.
// Negative disables hop detection entirely, so every corruption escapes to
// its destination.
func (s Spec) WithCRC(bits int) Spec {
	s.inner.FR.CrcBits = bits
	s.inner.VC.CrcBits = bits
	return s
}

// WithE2ECheck returns the spec with the end-to-end payload checksum armed:
// a packet completing with corrupted payload is treated as lost — NACKed and,
// under WithRetry, retransmitted — instead of delivered. Flit-reservation
// specs only (the virtual-channel baseline has no recovery layer; its escapes
// are only counted).
func (s Spec) WithE2ECheck(on bool) Spec {
	s.inner.FR.E2ECheck = on
	return s
}

// WithChaos returns the spec running under a deterministic chaos campaign of
// the given intensity in (0, 1]: composed soft loss, background bit errors,
// link flaps, mid-run corruption spikes and (at intensity >= 0.75) router
// kills, all expanded from (intensity, seed) by core.NewChaosPlan. The
// campaign overwrites any WithScenario schedule and rides the spec, so
// harness campaigns replay it bit-identically at any worker count.
// Flit-reservation specs only; Run panics otherwise.
func (s Spec) WithChaos(intensity float64, seed uint64) Spec {
	s.inner.ChaosIntensity = intensity
	s.inner.ChaosSeed = seed
	return s
}
