package frfc_test

import (
	"fmt"

	"frfc"
)

// The simplest use: run the paper's storage-matched pair at half capacity on
// a small mesh and compare latencies. (Examples use fixed seeds and small
// meshes so their output is deterministic.)
func Example() {
	fr := frfc.FR6(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(500, 800)
	vc := frfc.VC8(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(500, 800)
	rf := frfc.Run(fr, 0.50)
	rv := frfc.Run(vc, 0.50)
	fmt.Printf("FR6 delivered %d/%d packets\n", rf.SampledDelivered, rf.SampleSize)
	fmt.Printf("VC8 delivered %d/%d packets\n", rv.SampledDelivered, rv.SampleSize)
	fmt.Printf("flit reservation faster: %v\n", rf.AvgLatency < rv.AvgLatency)
	// Output:
	// FR6 delivered 500/500 packets
	// VC8 delivered 500/500 packets
	// flit reservation faster: true
}

// Table 1's headline: the flit-reservation configuration with 6 buffers
// costs about the same storage as the virtual-channel configuration with 8.
func ExampleStorageTable() {
	for _, row := range frfc.StorageTable() {
		if row.Name == "FR6" || row.Name == "VC8" {
			fmt.Printf("%s: %d bits/node\n", row.Name, row.BitsPerNode)
		}
	}
	// Output:
	// VC8: 10452 bits/node
	// FR6: 10762 bits/node
}

// Table 2's bandwidth debit: flit reservation pays 5 extra bits per data
// flit for the arrival-time stamp — about 2% of a 256-bit flit.
func ExampleBandwidthTable() {
	rows, penalty := frfc.BandwidthTable()
	for _, r := range rows {
		fmt.Printf("%s: %.1f bits/flit\n", r.Name, r.BitsPerFlit)
	}
	fmt.Printf("penalty: %.2f%%\n", penalty*100)
	// Output:
	// VC: 2.2 bits/flit
	// FR: 7.2 bits/flit
	// penalty: 1.95%
}

// Custom builds configurations beyond the paper's presets — here a
// flit-reservation network with a longer scheduling horizon under transpose
// traffic.
func ExampleCustom() {
	spec, err := frfc.Custom("my-network", frfc.Options{
		FlitReservation: true,
		MeshRadix:       4,
		DataBuffers:     8,
		Horizon:         64,
		Pattern:         "transpose",
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	r := frfc.Run(spec.WithSampling(300, 600), 0.30)
	fmt.Printf("delivered %d/%d\n", r.SampledDelivered, r.SampleSize)
	// Output:
	// delivered 300/300
}

// Sweep produces the latency-versus-offered-traffic series behind the
// paper's figures; saturation shows up as the Saturated flag.
func ExampleSweep() {
	spec := frfc.VC8(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(400, 600)
	for _, r := range frfc.Sweep(spec, []float64{0.2, 0.9}) {
		fmt.Printf("load %.0f%%: saturated=%v\n", r.Load*100, r.Saturated)
	}
	// Output:
	// load 20%: saturated=false
	// load 90%: saturated=true
}
