package frfc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// chromeTrace mirrors the Chrome trace-event container, the format Perfetto
// loads.
type chromeTrace struct {
	TraceEvents []struct {
		Ph   string `json:"ph"`
		Name string `json:"name"`
		Pid  int64  `json:"pid"`
		Ts   int64  `json:"ts"`
	} `json:"traceEvents"`
}

func smallSpec(t *testing.T, s Spec) Spec {
	t.Helper()
	return s.WithMeshRadix(4).WithSampling(150, 400)
}

func TestRunObservedCollectsMetricsAndTrace(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"FR6", FR6(FastControl, 5)},
		{"VC8", VC8(FastControl, 5)},
		{"WH", WormholeSpec(FastControl, 8, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			obs := NewObserver(ObserverOptions{Metrics: true, MetricsEpoch: 16, Trace: true, TraceCapacity: 1 << 16})
			r := RunObserved(smallSpec(t, tc.spec), 0.3, obs)
			if r.Saturated {
				t.Fatalf("light load saturated: %+v", r)
			}

			var mj bytes.Buffer
			if err := obs.WriteMetricsJSON(&mj); err != nil {
				t.Fatalf("WriteMetricsJSON: %v", err)
			}
			var reg struct {
				Radix  int `json:"radix"`
				Cycles int `json:"cycles"`
				Nodes  []struct {
					Injected int64 `json:"injected"`
					Ejected  int64 `json:"ejected"`
				} `json:"nodes"`
			}
			if err := json.Unmarshal(mj.Bytes(), &reg); err != nil {
				t.Fatalf("metrics JSON invalid: %v", err)
			}
			if reg.Radix != 4 || len(reg.Nodes) != 16 || reg.Cycles <= 0 {
				t.Fatalf("registry header wrong: radix=%d nodes=%d cycles=%d", reg.Radix, len(reg.Nodes), reg.Cycles)
			}
			var inj, ej int64
			for _, n := range reg.Nodes {
				inj += n.Injected
				ej += n.Ejected
			}
			if inj == 0 || ej == 0 {
				t.Fatalf("no injection/ejection activity recorded: inj=%d ej=%d", inj, ej)
			}

			var occ, util bytes.Buffer
			if err := obs.WriteOccupancyCSV(&occ); err != nil {
				t.Fatalf("WriteOccupancyCSV: %v", err)
			}
			if err := obs.WriteUtilizationCSV(&util); err != nil {
				t.Fatalf("WriteUtilizationCSV: %v", err)
			}
			for _, csv := range []string{occ.String(), util.String()} {
				lines := strings.Split(strings.TrimSpace(csv), "\n")
				if len(lines) != 5 {
					t.Fatalf("heatmap CSV is not # + 4 rows:\n%s", csv)
				}
				if cells := strings.Split(lines[1], ","); len(cells) != 4 {
					t.Fatalf("heatmap row has %d cells, want 4", len(cells))
				}
			}
			var total float64
			for _, cell := range strings.Split(strings.Join(strings.Split(strings.TrimSpace(util.String()), "\n")[1:], ","), ",") {
				var v float64
				if _, err := fmt.Sscanf(cell, "%g", &v); err != nil {
					t.Fatalf("non-numeric heatmap cell %q", cell)
				}
				total += v
			}
			if total <= 0 {
				t.Fatalf("utilization heatmap all zero:\n%s", util.String())
			}

			var tr bytes.Buffer
			if err := obs.WriteTrace(&tr, AllEvents); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			var ct chromeTrace
			if err := json.Unmarshal(tr.Bytes(), &ct); err != nil {
				t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
			}
			var instants, spans int
			for _, ev := range ct.TraceEvents {
				switch ev.Ph {
				case "i":
					instants++
				case "X":
					spans++
				}
			}
			if instants == 0 || spans == 0 {
				t.Fatalf("trace has %d instants, %d packet spans; want both > 0", instants, spans)
			}
			if buffered, _ := obs.TraceEventCount(); buffered != min(instants, 1<<16) {
				t.Fatalf("TraceEventCount buffered=%d, trace instants=%d", buffered, instants)
			}
		})
	}
}

func TestRunObservedMatchesRun(t *testing.T) {
	spec := smallSpec(t, FR6(FastControl, 5))
	base := Run(spec, 0.3)
	obs := NewObserver(ObserverOptions{Metrics: true, Trace: true})
	observed := RunObserved(spec, 0.3, obs)
	if base != observed {
		t.Fatalf("observation changed the simulation:\nbase:     %+v\nobserved: %+v", base, observed)
	}
	nilObs := RunObserved(spec, 0.3, nil)
	if base != nilObs {
		t.Fatalf("nil observer changed the simulation:\nbase: %+v\nnil:  %+v", base, nilObs)
	}
}

func TestObserverErrorsWhenNotCollecting(t *testing.T) {
	obs := NewObserver(ObserverOptions{})
	var buf bytes.Buffer
	if err := obs.WriteMetricsJSON(&buf); err == nil {
		t.Fatal("metrics export succeeded with metrics off")
	}
	if err := obs.WriteOccupancyCSV(&buf); err == nil {
		t.Fatal("occupancy export succeeded with metrics off")
	}
	if err := obs.WriteTrace(&buf, AllEvents); err == nil {
		t.Fatal("trace export succeeded with tracing off")
	}
	var nilObs *Observer
	if err := nilObs.WriteMetricsJSON(&buf); err == nil {
		t.Fatal("nil observer export succeeded")
	}
	if b, d := nilObs.TraceEventCount(); b != 0 || d != 0 {
		t.Fatal("nil observer reported trace events")
	}
}

func TestTraceFilterByWindow(t *testing.T) {
	obs := NewObserver(ObserverOptions{Trace: true, TraceCapacity: 1 << 16})
	RunObserved(smallSpec(t, FR6(FastControl, 5)), 0.3, obs)
	var all, windowed bytes.Buffer
	if err := obs.WriteTrace(&all, AllEvents); err != nil {
		t.Fatalf("WriteTrace all: %v", err)
	}
	if err := obs.WriteTrace(&windowed, TraceFilter{Node: -1, From: 100, To: 200}); err != nil {
		t.Fatalf("WriteTrace windowed: %v", err)
	}
	var ctAll, ctWin chromeTrace
	if err := json.Unmarshal(all.Bytes(), &ctAll); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(windowed.Bytes(), &ctWin); err != nil {
		t.Fatal(err)
	}
	if len(ctWin.TraceEvents) == 0 || len(ctWin.TraceEvents) >= len(ctAll.TraceEvents) {
		t.Fatalf("window filter did not narrow: %d vs %d events", len(ctWin.TraceEvents), len(ctAll.TraceEvents))
	}
	for _, ev := range ctWin.TraceEvents {
		if ev.Ph == "i" && (ev.Ts < 100 || ev.Ts > 200) {
			t.Fatalf("windowed trace leaked instant at ts=%d", ev.Ts)
		}
	}
}
