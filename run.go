package frfc

import (
	"frfc/internal/experiment"
)

// Result reports one simulated (configuration, load) point. Latencies are in
// cycles; loads are fractions of network capacity (for a k×k mesh under
// uniform traffic, capacity is 4/k flits per node per cycle).
type Result struct {
	Spec string
	// Load is the offered traffic.
	Load float64
	// EffectiveLoad is Load debited by the configuration's control
	// bandwidth overhead (Table 2), the paper's comparison basis.
	EffectiveLoad float64
	// AvgLatency is mean packet latency — creation to last-flit ejection,
	// including source queueing. AvgQueueDelay is the source-queueing
	// component alone.
	AvgLatency    float64
	AvgQueueDelay float64
	// CI95 is the half-width of the naive 95% confidence interval on
	// AvgLatency, computed as if sampled latencies were independent. They
	// are not — successive latencies are positively correlated — so prefer
	// BatchCI95, the non-overlapping batch-means interval over Batches
	// batches (zero when the sample was too small to batch). Lag1Autocorr
	// estimates the sequence's lag-1 autocorrelation; CISuspect is set when
	// it is positive and significant, i.e. when CI95 understates the real
	// uncertainty.
	CI95         float64
	BatchCI95    float64
	Batches      int
	Lag1Autocorr float64
	CISuspect    bool
	MinLatency   int64
	MaxLatency   int64
	// P50, P95 and P99 are exact latency quantiles of the sample.
	P50, P95, P99 int64
	// AcceptedLoad is delivered throughput as a fraction of capacity.
	AcceptedLoad float64
	// Saturated marks offered loads the configuration could not sustain.
	Saturated bool
	// WarmupUnstable is set when warm-up hit its cycle cap without source
	// queues stabilizing: measurement began from a non-steady state
	// (typical beyond saturation).
	WarmupUnstable bool
	// SampledDelivered of SampleSize tagged packets completed.
	SampledDelivered int
	SampleSize       int
	// Cycles is the simulated run length.
	Cycles int64
	// PoolFullFraction is the fraction of measured cycles the central
	// router's buffer pools were completely full (Section 4.2).
	PoolFullFraction float64
	// EagerTransfers and EagerResidencies report the Figure 10 shadow
	// ledger (Options.TrackEagerTransfers): buffer-to-buffer transfers
	// the allocate-at-reservation-time policy would force, over the
	// number of buffer residencies replayed. Deferred allocation — the
	// executed policy — never needs a transfer.
	EagerTransfers   int64
	EagerResidencies int64
	// DroppedFlits and LostPackets report fault-injection activity
	// (Options.DataFaultRate). Under end-to-end retry LostPackets counts
	// loss events per transmission attempt.
	DroppedFlits int64
	LostPackets  int64
	// Recovery-layer activity (Options.RetryLimit, Options.CtrlFaultRate):
	// end-to-end retransmissions issued, packets abandoned after the retry
	// budget ran out, packets whose delivering attempt was a retry, and
	// control flits corrupted (each recovered in place by link-level
	// retransmission).
	RetriedPackets      int64
	AbandonedPackets    int64
	DeliveredAfterRetry int64
	CtrlCorrupted       int64
	// AvgRetryLatency is the mean latency of sampled packets that needed
	// at least one retry (0 when none did), reported apart from AvgLatency
	// because it includes loss detection, the notification round-trip and
	// backoff.
	AvgRetryLatency float64
	// UnreachablePackets counts packets failed fast at the source because a
	// hard fault (Options.Scenario) disconnected their destination, and
	// DeliveredFraction is delivered over resolved (packets still in flight
	// when the run stops don't count against it) — the graceful-degradation
	// headline under a fault scenario, 1.0 on a healthy network.
	UnreachablePackets int64
	DeliveredFraction  float64
	// Bit-error-model activity (Options.BER): flits delivered corrupted,
	// corrupted flits the modeled hop CRC caught, corrupted payload that
	// escaped every hop CRC to its destination, phantom reservations an
	// escaped-corrupt control flit installed, and orphaned parked flits the
	// reclamation timeout freed back into the loss path. The last two are
	// flit-reservation-only; the first three also populate for
	// virtual-channel runs with a BER.
	CorruptedFlits      int64
	CrcDetected         int64
	CorruptEscapes      int64
	PhantomReservations int64
	ReclaimedSlots      int64
	// Self-profiling summary, populated only when the run carried a profile
	// registry (ObserverOptions.Profile, ParallelOptions.Profile): total and
	// active component ticks, the overall idle fraction, and per-phase work
	// attribution inside the flit-reservation router. Every value is a
	// deterministic function of the simulation — host memory samples never
	// enter a Result — so profiled results stay bit-identical across worker
	// counts.
	ProfTicks, ProfActiveTicks                                 int64
	ProfIdleFraction                                           float64
	ProfSchedWork, ProfArbWork, ProfSwitchWork, ProfCreditWork int64
	// Latency-provenance summary, populated only when the run carried a
	// stage ledger (ObserverOptions.Waterfall, ParallelOptions.Waterfall):
	// WaterfallPackets sampled packets decomposed, their summed latency
	// WaterfallTotal, and the seven per-stage cycle totals. The partition
	// is exact — the stage fields sum to WaterfallTotal — and every value
	// is deterministic, so waterfall results stay bit-identical across
	// worker counts.
	WaterfallPackets, WaterfallTotal               int64
	WaterfallQueue, WaterfallReserve, WaterfallArb int64
	WaterfallStall, WaterfallSched, WaterfallLink  int64
	WaterfallDrain                                 int64
}

func fromInternal(r experiment.Result) Result {
	return Result{
		Spec:             r.Spec,
		Load:             r.Load,
		EffectiveLoad:    r.EffectiveLoad,
		AvgLatency:       r.AvgLatency,
		AvgQueueDelay:    r.AvgQueueDelay,
		CI95:             r.CI95,
		BatchCI95:        r.BatchCI95,
		Batches:          r.Batches,
		Lag1Autocorr:     r.Lag1Autocorr,
		CISuspect:        r.CISuspect,
		WarmupUnstable:   r.WarmupUnstable,
		MinLatency:       int64(r.MinLatency),
		MaxLatency:       int64(r.MaxLatency),
		P50:              int64(r.P50),
		P95:              int64(r.P95),
		P99:              int64(r.P99),
		AcceptedLoad:     r.AcceptedLoad,
		Saturated:        r.Saturated,
		SampledDelivered: r.SampledDelivered,
		SampleSize:       r.SampleSize,
		Cycles:           int64(r.Cycles),
		PoolFullFraction: r.PoolFullFraction,
		EagerTransfers:   r.EagerTransfers,
		EagerResidencies: r.EagerResidencies,
		DroppedFlits:     r.DroppedFlits,
		LostPackets:      r.LostPackets,

		RetriedPackets:      r.RetriedPackets,
		AbandonedPackets:    r.AbandonedPackets,
		DeliveredAfterRetry: r.DeliveredAfterRetry,
		CtrlCorrupted:       r.CtrlCorrupted,
		AvgRetryLatency:     r.AvgRetryLatency,

		UnreachablePackets: r.UnreachablePackets,
		DeliveredFraction:  r.DeliveredFraction,

		CorruptedFlits:      r.CorruptedFlits,
		CrcDetected:         r.CrcDetected,
		CorruptEscapes:      r.CorruptEscapes,
		PhantomReservations: r.PhantomReservations,
		ReclaimedSlots:      r.ReclaimedSlots,

		ProfTicks:        r.ProfTicks,
		ProfActiveTicks:  r.ProfActiveTicks,
		ProfIdleFraction: r.ProfIdleFraction,
		ProfSchedWork:    r.ProfSchedWork,
		ProfArbWork:      r.ProfArbWork,
		ProfSwitchWork:   r.ProfSwitchWork,
		ProfCreditWork:   r.ProfCreditWork,

		WaterfallPackets: r.WaterfallPackets,
		WaterfallTotal:   r.WaterfallTotal,
		WaterfallQueue:   r.WaterfallQueue,
		WaterfallReserve: r.WaterfallReserve,
		WaterfallArb:     r.WaterfallArb,
		WaterfallStall:   r.WaterfallStall,
		WaterfallSched:   r.WaterfallSched,
		WaterfallLink:    r.WaterfallLink,
		WaterfallDrain:   r.WaterfallDrain,
	}
}

// Run simulates the spec at one offered load using the paper's measurement
// protocol: warm up until source queues stabilize, tag a packet sample, and
// run until the whole sample is delivered or saturation is detected.
func Run(s Spec, load float64) Result {
	return fromInternal(experiment.Run(s.inner, load))
}

// Sweep runs the spec at each offered load — the raw material of the paper's
// latency-versus-offered-traffic figures.
func Sweep(s Spec, loads []float64) []Result {
	rs := experiment.Sweep(s.inner, loads)
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = fromInternal(r)
	}
	return out
}

// BaseLatency measures the spec's contention-free latency in cycles.
func BaseLatency(s Spec) float64 {
	return experiment.BaseLatency(s.inner)
}

// SaturationThroughput locates the highest sustainable offered load by
// bisection, as a fraction of capacity. resolution is the search step; 0
// means 1% of capacity.
func SaturationThroughput(s Spec, resolution float64) float64 {
	return experiment.SaturationThroughput(s.inner, experiment.SaturationOptions{Resolution: resolution})
}

// SummaryRow is one configuration's row of the paper's Table 3.
type SummaryRow struct {
	Spec                string
	BaseLatency         float64
	LatencyAt50         float64
	Throughput          float64
	EffectiveThroughput float64
}

// Summarize measures a spec's Table 3 row: base latency, latency at 50%
// capacity, and saturation throughput (raw and bandwidth-debited).
func Summarize(s Spec) SummaryRow {
	r := experiment.Summarize(s.inner, experiment.SaturationOptions{})
	return SummaryRow{
		Spec:                r.Spec,
		BaseLatency:         r.BaseLatency,
		LatencyAt50:         r.LatencyAt50,
		Throughput:          r.Throughput,
		EffectiveThroughput: r.EffectiveThroughput,
	}
}
