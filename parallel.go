package frfc

import (
	"context"
	"fmt"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// Job is one unit of parallel experiment work: a configuration simulated at
// one offered load. Seed, when nonzero, overrides the spec's RNG seed — the
// way a campaign decorrelates replicas of one configuration.
type Job struct {
	Spec Spec
	Load float64
	Seed uint64
}

// Hash is the job's stable content hash: a digest of the normalized spec,
// load and seed that keys the JSONL result cache. Two jobs hash equal exactly
// when they would execute identical simulations.
func (j Job) Hash() string { return j.internal().Hash() }

func (j Job) internal() harness.Job {
	return harness.Job{Spec: j.Spec.inner, Load: j.Load, Seed: j.Seed}
}

// JobResult is one job's outcome from RunJobs.
type JobResult struct {
	// Job is the work this result describes, echoed back so failures can
	// be attributed even when Result is zero.
	Job Job
	// Result is meaningful when Err is empty.
	Result Result
	Hash   string
	// Err reports a failed job: a captured panic (stack included, with
	// Panicked set), a per-job timeout, or a campaign cancellation.
	// Failures never disturb sibling jobs.
	Err      string
	Panicked bool
	// Cached marks results served from the ResultPath store without
	// simulating.
	Cached bool
	// Elapsed is the job's wall-clock execution time (zero when cached).
	Elapsed time.Duration
}

// Progress is a campaign snapshot streamed to ParallelOptions.Progress after
// every job completion.
type Progress struct {
	Total, Done     int
	Cached, Skipped int
	Failed          int
	Elapsed         time.Duration
	// ETA is a naive projection from mean job execution time; display
	// only, zero until the first job finishes.
	ETA time.Duration
}

// String renders the snapshot as one status line.
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d done", p.Done, p.Total)
	if p.Cached > 0 {
		s += fmt.Sprintf(", %d cached", p.Cached)
	}
	if p.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped", p.Skipped)
	}
	if p.Failed > 0 {
		s += fmt.Sprintf(", %d failed", p.Failed)
	}
	if p.ETA > 0 {
		s += fmt.Sprintf(", ~%s left", p.ETA.Round(time.Second))
	}
	return s
}

// ParallelOptions tunes RunJobs, SweepParallel and SaturationSearch. The zero
// value runs on runtime.NumCPU() workers with no timeout, no cache and no
// progress reporting.
type ParallelOptions struct {
	// Workers is the pool size; 0 means runtime.NumCPU(). Any worker
	// count yields bit-identical results: each job owns its own network
	// and RNG, and results always come back in job order.
	Workers int
	// Timeout, when nonzero, bounds each job's execution; the simulator
	// polls cancellation every 1024 cycles.
	Timeout time.Duration
	// ResultPath, when non-empty, names a JSONL result store appended to
	// after every completed job and consulted before running one, so an
	// interrupted campaign re-invoked with the same path resumes where it
	// stopped.
	ResultPath string
	// Progress, when non-nil, receives a snapshot after every completion.
	Progress func(Progress)
	// Status, when non-nil, feeds the campaign to a live status server:
	// progress and in-flight jobs appear on /status, and every simulated
	// job's per-router counters are merged into the /metrics exposition as
	// it finishes. Serving is observation-only — results are bit-identical
	// with or without it.
	Status *StatusServer
	// Profile arms self-profiling on every simulated job: each Result
	// carries the deterministic Prof* activity summary, and when Status is
	// also set the per-job profile registries are merged into the server's
	// /status profile block and /metrics exposition. Observation-only: the
	// shared Result fields are bit-identical with profiling off, and
	// profiled campaigns are bit-identical across worker counts.
	Profile bool
	// Waterfall arms latency provenance on every simulated job: each Result
	// carries the deterministic Waterfall* stage summary (queue, reserve,
	// arb, stall, sched, link, drain — summing exactly to the decomposed
	// latency), and when Status is also set the per-job ledgers are merged
	// into the server's /status waterfall block and /metrics exposition.
	// Observation-only: the shared Result fields are bit-identical with the
	// ledger off, and waterfall campaigns are bit-identical across worker
	// counts.
	Waterfall bool
}

func (o ParallelOptions) internal() (harness.Options, *harness.Store, error) {
	ho := harness.Options{Workers: o.Workers, Timeout: o.Timeout}
	if o.Progress != nil || o.Status != nil {
		cb := o.Progress
		var st func(harness.Progress)
		if o.Status != nil {
			st = o.Status.srv.OnProgress
		}
		ho.Progress = func(p harness.Progress) {
			if st != nil {
				st(p)
			}
			if cb != nil {
				cb(Progress{
					Total: p.Total, Done: p.Done, Cached: p.Cached,
					Skipped: p.Skipped, Failed: p.Failed,
					Elapsed: p.Elapsed, ETA: p.ETA,
				})
			}
		}
	}
	if o.Status != nil {
		ho.JobStarted = o.Status.srv.OnJobStarted
		ho.JobFinished = o.Status.srv.OnJobFinished
		ho.Collect = o.Status.srv.OnCollect
		if o.Profile {
			ho.CollectProfile = o.Status.srv.OnCollectProfile
		}
		if o.Waterfall {
			ho.CollectWaterfall = o.Status.srv.OnCollectWaterfall
		}
	}
	ho.Profile = o.Profile
	ho.Waterfall = o.Waterfall
	if o.ResultPath == "" {
		return ho, nil, nil
	}
	st, err := harness.OpenStore(o.ResultPath)
	if err != nil {
		return ho, nil, err
	}
	ho.Store = st
	return ho, st, nil
}

// RunJobs executes the jobs concurrently on a worker pool and returns one
// JobResult per job, in job order. The results are bit-identical to running
// each job serially, for any worker count. A panicking or timed-out job
// becomes that job's failure, not a crashed campaign; the returned error is
// non-nil only when ctx itself ended.
func RunJobs(ctx context.Context, jobs []Job, o ParallelOptions) ([]JobResult, error) {
	ho, st, err := o.internal()
	if err != nil {
		return nil, err
	}
	if st != nil {
		defer st.Close()
	}
	hjobs := make([]harness.Job, len(jobs))
	for i, j := range jobs {
		hjobs[i] = j.internal()
	}
	results, err := harness.RunJobs(ctx, hjobs, ho)
	out := make([]JobResult, len(results))
	for i, jr := range results {
		out[i] = JobResult{
			Job: jobs[i], Result: fromInternal(jr.Result), Hash: jr.Hash,
			Err: jr.Err, Panicked: jr.Panicked, Cached: jr.Cached,
			Elapsed: jr.Elapsed,
		}
	}
	return out, err
}

// SweepParallel is Sweep fanned over a worker pool: it runs the spec at each
// offered load concurrently and returns results in load order, bit-identical
// to Sweep. A failed point returns its zero Result; inspect per-point detail
// with RunJobs when that matters.
func SweepParallel(ctx context.Context, s Spec, loads []float64, o ParallelOptions) ([]Result, error) {
	jobs := make([]Job, len(loads))
	for i, l := range loads {
		jobs[i] = Job{Spec: s, Load: l}
	}
	jrs, err := RunJobs(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(jrs))
	for i, jr := range jrs {
		out[i] = jr.Result
	}
	return out, nil
}

// SatPoint is one configuration's result from SaturationSearch.
type SatPoint struct {
	Spec string
	// Saturation is the highest sustainable offered load (fraction of
	// capacity); Effective is debited by the configuration's bandwidth
	// penalty, the paper's comparison basis.
	Saturation float64
	Effective  float64
	// BaseLatency is the contention-free latency the search calibrated
	// its sustainability threshold against.
	BaseLatency float64
	// Evals counts bisection evaluations; Simulated counts those actually
	// run rather than served from the result store.
	Evals     int
	Simulated int
	// Err is non-empty when the search could not complete.
	Err string
}

// SaturationSearch locates each spec's saturation throughput adaptively by
// bisection — O(log(1/resolution)) runs per configuration instead of a fixed
// load grid. Specs search in parallel; every run flows through the result
// store when ResultPath is set, so searches cache and resume like sweeps.
// resolution is the load step at which bisection stops; 0 means 1% of
// capacity.
func SaturationSearch(ctx context.Context, specs []Spec, resolution float64, o ParallelOptions) ([]SatPoint, error) {
	ho, st, err := o.internal()
	if err != nil {
		return nil, err
	}
	if st != nil {
		defer st.Close()
	}
	inner := make([]experiment.Spec, len(specs))
	for i, s := range specs {
		inner[i] = s.inner
	}
	srs, err := harness.SaturationSearch(ctx, inner, experiment.SaturationOptions{Resolution: resolution}, ho)
	out := make([]SatPoint, len(srs))
	for i, sr := range srs {
		out[i] = SatPoint{
			Spec: sr.Spec, Saturation: sr.Saturation, Effective: sr.Effective,
			BaseLatency: sr.BaseLatency, Evals: sr.Evals, Simulated: sr.Simulated,
			Err: sr.Err,
		}
	}
	return out, err
}
