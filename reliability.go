package frfc

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// ReliabilityScenario names one hard-fault schedule of a ReliabilitySweep,
// written in the scenario grammar: semicolon-separated events "down A-B @C"
// (sever the link between neighbor nodes A and B at cycle C), "up A-B @C"
// (restore it), and "kill N @C" (permanently fail node N's router).
type ReliabilityScenario struct {
	Name     string
	Scenario string
}

// ReliabilityPoint is one row of a ReliabilitySweep: one scenario run to
// full resolution, with graceful-degradation measurements split around the
// outage.
type ReliabilityPoint struct {
	Scenario   string
	RetryLimit int

	Offered   int64
	Delivered int64
	// Abandoned counts packets given up on after exhausting the retry
	// budget; under hard faults it should stay zero — losses either
	// recover through retry or fail fast as Unreachable.
	Abandoned int64
	// Unreachable counts packets failed fast at the source because a fault
	// disconnected their destination.
	Unreachable int64

	DroppedFlits        int64
	Retried             int64
	DeliveredAfterRetry int64

	// AvgLatency is the mean creation-to-delivery latency over every
	// delivered packet; the phase means split the run at the first fault
	// and after the last scheduled event settles. LatencyRecovery is
	// PostRecoveryLatency over PreFaultLatency — 1.0 is full recovery, 0
	// means a phase delivered nothing.
	AvgLatency          float64
	PreFaultLatency     float64
	OutageLatency       float64
	PostRecoveryLatency float64
	LatencyRecovery     float64

	// Cycles is how long the row took to resolve everything.
	Cycles int64
	// Wedged is set if the no-progress watchdog fired — it never should.
	Wedged bool
}

// DeliveredFraction is the end-to-end delivery probability of the row —
// delivered over offered, counting fast-failed unreachable packets against
// the scenario.
func (p ReliabilityPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// String renders the point as one sweep row.
func (p ReliabilityPoint) String() string {
	rec := "-"
	if p.LatencyRecovery > 0 {
		rec = fmt.Sprintf("%.2f", p.LatencyRecovery)
	}
	return fmt.Sprintf("%-12s delivered=%5.1f%%  unreachable=%3d  dropped=%4d  retried=%4d  latency=%8.2f  recovery=%s",
		p.Scenario, p.DeliveredFraction()*100, p.Unreachable, p.DroppedFlits, p.Retried, p.AvgLatency, rec)
}

// ReliabilitySweepOptions parameterizes a ReliabilitySweep. Zero fields take
// defaults: a 4×4 mesh, 600 packets of 5 flits per row, retry budget 8,
// fault-aware table routing, and the standard scenario set (healthy
// baseline, permanent link outage, repaired link outage, router killed).
type ReliabilitySweepOptions struct {
	Radix      int
	Packets    int
	PacketLen  int
	RetryLimit int
	// Routing names the routing algorithm every row runs ("table" by
	// default, so the healthy baseline is comparable to the fault rows).
	Routing string
	// Scenarios overrides the default rows; each entry's Scenario string
	// is parsed with the scenario grammar.
	Scenarios []ReliabilityScenario
	// Check runs every row under the per-cycle invariant checker.
	Check bool
	Seed  uint64
	// Workers sizes the pool the sweep's scenarios fan out over; 0 means
	// runtime.NumCPU(). Each row owns its own network and RNG, so any
	// worker count produces identical points in identical order.
	Workers int
}

// ReliabilitySweep measures graceful degradation under scheduled hard
// faults: each scenario severs links or kills routers mid-run while the
// network reroutes around the damage and end-to-end retry recovers the
// destroyed in-flight flits. Still-connected traffic is delivered in full,
// disconnected traffic fails fast as unreachable, and after a repair the
// latency returns to its pre-fault level — the LatencyRecovery column.
// The rows execute concurrently on the harness worker pool; the points are
// identical to a serial sweep. A malformed scenario string is an error.
func ReliabilitySweep(o ReliabilitySweepOptions) ([]ReliabilityPoint, error) {
	ro := experiment.ReliabilitySweepOptions{
		Radix: o.Radix, Packets: o.Packets, PacketLen: o.PacketLen,
		RetryLimit: o.RetryLimit, Routing: o.Routing, Check: o.Check, Seed: o.Seed,
	}
	if o.Scenarios != nil {
		ro.Scenarios = make([]experiment.ReliabilityScenario, len(o.Scenarios))
		for i, sc := range o.Scenarios {
			events, err := core.ParseScenario(sc.Scenario)
			if err != nil {
				return nil, fmt.Errorf("frfc: scenario %q: %w", sc.Name, err)
			}
			ro.Scenarios[i] = experiment.ReliabilityScenario{Name: sc.Name, Events: events}
		}
	}
	pts, err := harness.ReliabilitySweep(context.Background(), ro, harness.Options{Workers: o.Workers})
	if err != nil {
		return nil, err
	}
	out := make([]ReliabilityPoint, len(pts))
	for i, p := range pts {
		out[i] = ReliabilityPoint{
			Scenario: p.Scenario, RetryLimit: p.RetryLimit,
			Offered: p.Offered, Delivered: p.Delivered, Abandoned: p.Abandoned,
			Unreachable: p.Unreachable, DroppedFlits: p.DroppedFlits,
			Retried: p.Retried, DeliveredAfterRetry: p.DeliveredAfterRetry,
			AvgLatency: p.AvgLatency, PreFaultLatency: p.PreFaultLatency,
			OutageLatency: p.OutageLatency, PostRecoveryLatency: p.PostRecoveryLatency,
			LatencyRecovery: p.LatencyRecovery,
			Cycles:          int64(p.Cycles), Wedged: p.Wedged,
		}
	}
	return out, nil
}
