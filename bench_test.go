// Benchmarks regenerating every table and figure of the paper's evaluation
// section at reduced measurement scale. Each benchmark reports the headline
// numbers of its experiment as custom metrics (saturation throughput in
// %capacity, latency in cycles), so `go test -bench=.` reproduces the shape
// of the paper's results; cmd/paperfigs -scale full produces the full-scale
// series. The ns/op numbers are simulator performance, not network metrics.
package frfc_test

import (
	"context"
	"math"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"frfc"
)

// benchScale keeps per-iteration simulation cost modest so the benchmarks
// finish in seconds while still reproducing each experiment's shape.
func benchScale(s frfc.Spec) frfc.Spec { return s.WithSampling(1200, 1500) }

// satResolution trades search precision for benchmark runtime.
const satResolution = 0.05

// BenchmarkTable1StorageOverhead regenerates Table 1 (storage per node).
// Metrics: bits/node for the storage-matched pair FR6 and VC8.
func BenchmarkTable1StorageOverhead(b *testing.B) {
	var rows []frfc.StorageRow
	for i := 0; i < b.N; i++ {
		rows = frfc.StorageTable()
	}
	byName := map[string]frfc.StorageRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	b.ReportMetric(float64(byName["FR6"].BitsPerNode), "FR6-bits/node")
	b.ReportMetric(float64(byName["VC8"].BitsPerNode), "VC8-bits/node")
	b.ReportMetric(float64(byName["FR13"].BitsPerNode), "FR13-bits/node")
	b.ReportMetric(float64(byName["VC16"].BitsPerNode), "VC16-bits/node")
}

// BenchmarkTable2BandwidthOverhead regenerates Table 2 (bandwidth per data
// flit). Metrics: overhead bits per flit for both methods and the FR debit.
func BenchmarkTable2BandwidthOverhead(b *testing.B) {
	var rows []frfc.BandwidthRow
	var penalty float64
	for i := 0; i < b.N; i++ {
		rows, penalty = frfc.BandwidthTable()
	}
	for _, r := range rows {
		b.ReportMetric(r.BitsPerFlit, r.Name+"-bits/flit")
	}
	b.ReportMetric(penalty*100, "FR-penalty-%")
}

// BenchmarkFigure5FastControl5Flit regenerates Figure 5's comparison: with
// fast control wires and 5-flit packets, FR6 saturates well beyond VC8
// (paper: 77% vs 63%) at equal storage, and FR13 beyond VC16 (85% vs 80%).
func BenchmarkFigure5FastControl5Flit(b *testing.B) {
	var fr6, vc8 float64
	for i := 0; i < b.N; i++ {
		fr6 = frfc.SaturationThroughput(benchScale(frfc.FR6(frfc.FastControl, 5)), satResolution)
		vc8 = frfc.SaturationThroughput(benchScale(frfc.VC8(frfc.FastControl, 5)), satResolution)
	}
	b.ReportMetric(fr6*100, "FR6-sat-%cap")
	b.ReportMetric(vc8*100, "VC8-sat-%cap")
	if fr6 <= vc8 {
		b.Fatalf("Figure 5 shape violated: FR6 saturation %.0f%% <= VC8 %.0f%%", fr6*100, vc8*100)
	}
}

// BenchmarkFigure6FastControl21Flit regenerates Figure 6: with 21-flit
// packets FR13 still beats the much larger VC32 (paper: 75% vs 65%), while
// FR6's small pool tempers its advantage (60% vs 55%).
func BenchmarkFigure6FastControl21Flit(b *testing.B) {
	var fr13, vc32, fr6 float64
	for i := 0; i < b.N; i++ {
		fr13 = frfc.SaturationThroughput(benchScale(frfc.FR13(frfc.FastControl, 21)), satResolution)
		vc32 = frfc.SaturationThroughput(benchScale(frfc.VC32(frfc.FastControl, 21)), satResolution)
		fr6 = frfc.SaturationThroughput(benchScale(frfc.FR6(frfc.FastControl, 21)), satResolution)
	}
	b.ReportMetric(fr13*100, "FR13-sat-%cap")
	b.ReportMetric(vc32*100, "VC32-sat-%cap")
	b.ReportMetric(fr6*100, "FR6-sat-%cap")
}

// BenchmarkFigure7HorizonSweep regenerates Figure 7: FR6 throughput is
// insensitive to the scheduling horizon; 16 cycles lands within ~10% of the
// optimum and gains flatten beyond 32.
func BenchmarkFigure7HorizonSweep(b *testing.B) {
	horizons := []int{16, 32, 64, 128}
	sats := make([]float64, len(horizons))
	for i := 0; i < b.N; i++ {
		for h, horizon := range horizons {
			spec, err := frfc.Custom("FR6-horizon", frfc.Options{
				FlitReservation: true, DataBuffers: 6, CtrlVCs: 2,
				Horizon: horizon, Wiring: frfc.FastControl,
			})
			if err != nil {
				b.Fatal(err)
			}
			sats[h] = frfc.SaturationThroughput(benchScale(spec), satResolution)
		}
	}
	b.ReportMetric(sats[0]*100, "s16-sat-%cap")
	b.ReportMetric(sats[1]*100, "s32-sat-%cap")
	b.ReportMetric(sats[3]*100, "s128-sat-%cap")
	if sats[0] < sats[3]*0.85 {
		b.Fatalf("Figure 7 shape violated: horizon 16 (%.0f%%) more than 15%% below horizon 128 (%.0f%%)",
			sats[0]*100, sats[3]*100)
	}
}

// BenchmarkFigure8LeadingControlLead regenerates Figure 8: with 1-cycle
// wires, FR6 throughput is independent of whether control leads data by 1, 2
// or 4 cycles.
func BenchmarkFigure8LeadingControlLead(b *testing.B) {
	leads := []int{1, 2, 4}
	sats := make([]float64, len(leads))
	for i := 0; i < b.N; i++ {
		for j, lead := range leads {
			sats[j] = frfc.SaturationThroughput(benchScale(frfc.FRLead(lead, 5)), satResolution)
		}
	}
	b.ReportMetric(sats[0]*100, "lead1-sat-%cap")
	b.ReportMetric(sats[1]*100, "lead2-sat-%cap")
	b.ReportMetric(sats[2]*100, "lead4-sat-%cap")
	spread := sats[2] - sats[0]
	if spread < 0 {
		spread = -spread
	}
	if spread > 0.10 {
		b.Fatalf("Figure 8 shape violated: saturation varies %.0f points across leads", spread*100)
	}
}

// BenchmarkFigure9LeadingVsVC regenerates Figure 9: on identical 1-cycle
// wires with a 1-cycle control lead, FR6 matches VC's base latency and has
// lower latency under load (paper: 19 vs 21 cycles at 50% capacity).
func BenchmarkFigure9LeadingVsVC(b *testing.B) {
	var frBase, vcBase, fr50, vc50 float64
	for i := 0; i < b.N; i++ {
		fr := benchScale(frfc.FRLead(1, 5))
		vc := benchScale(frfc.VC8(frfc.LeadingControl, 5))
		frBase = frfc.BaseLatency(fr)
		vcBase = frfc.BaseLatency(vc)
		fr50 = frfc.Run(fr, 0.50).AvgLatency
		vc50 = frfc.Run(vc, 0.50).AvgLatency
	}
	b.ReportMetric(frBase, "FR6-base-cycles")
	b.ReportMetric(vcBase, "VC8-base-cycles")
	b.ReportMetric(fr50, "FR6-lat50-cycles")
	b.ReportMetric(vc50, "VC8-lat50-cycles")
	if fr50 >= vc50 {
		b.Fatalf("Figure 9 shape violated: FR latency at 50%% (%.1f) >= VC (%.1f)", fr50, vc50)
	}
}

// BenchmarkTable3Summary regenerates one group of Table 3 (fast control,
// 5-flit packets): base latency and saturation for the storage-matched pair.
func BenchmarkTable3Summary(b *testing.B) {
	var fr, vc frfc.SummaryRow
	for i := 0; i < b.N; i++ {
		fr = frfc.Summarize(benchScale(frfc.FR6(frfc.FastControl, 5)))
		vc = frfc.Summarize(benchScale(frfc.VC8(frfc.FastControl, 5)))
	}
	b.ReportMetric(fr.BaseLatency, "FR6-base-cycles")
	b.ReportMetric(vc.BaseLatency, "VC8-base-cycles")
	b.ReportMetric(fr.LatencyAt50, "FR6-lat50-cycles")
	b.ReportMetric(vc.LatencyAt50, "VC8-lat50-cycles")
	b.ReportMetric(fr.EffectiveThroughput*100, "FR6-effsat-%cap")
	b.ReportMetric(vc.EffectiveThroughput*100, "VC8-effsat-%cap")
	if fr.BaseLatency >= vc.BaseLatency {
		b.Fatalf("Table 3 shape violated: FR base latency %.1f >= VC %.1f", fr.BaseLatency, vc.BaseLatency)
	}
}

// BenchmarkBufferOccupancyNearSaturation regenerates the Section 4.2
// observation: near saturation with long packets, FR6's pools run full a
// large fraction of the time (paper ~40%) while VC saturates with pools full
// under 5% of the time — FR's throughput comes from using the buffers, not
// from having more of them.
func BenchmarkBufferOccupancyNearSaturation(b *testing.B) {
	var frFull, vcFull float64
	for i := 0; i < b.N; i++ {
		frFull = frfc.Run(benchScale(frfc.FR6(frfc.FastControl, 21)), 0.60).PoolFullFraction
		vcFull = frfc.Run(benchScale(frfc.VC8(frfc.FastControl, 21)), 0.52).PoolFullFraction
	}
	b.ReportMetric(frFull*100, "FR6-poolfull-%")
	b.ReportMetric(vcFull*100, "VC8-poolfull-%")
}

// BenchmarkAblationAllOrNothing regenerates the Section 5 scheduling-policy
// ablation with wide control flits (d=4, where the policies differ).
// Per-flit scheduling releases each data flit the moment it is individually
// scheduled, freeing current-node buffers earlier; all-or-nothing holds the
// whole group until every lead is schedulable. In this implementation
// per-flit mode pre-claims the group's downstream buffers (strand-free
// admission, required for deadlock freedom — see internal/core), which
// equalizes the buffer side, so the two policies measure within noise of
// each other here — the paper's qualitative per-flit advantage presumes the
// unrestricted release policy, which deadlocks when implemented literally.
// EXPERIMENTS.md discusses the difference.
func BenchmarkAblationAllOrNothing(b *testing.B) {
	mk := func(aon bool) frfc.Spec {
		spec, err := frfc.Custom("FR6-d4", frfc.Options{
			FlitReservation: true, DataBuffers: 6, CtrlVCs: 2,
			LeadsPerCtrl: 4, AllOrNothing: aon, Wiring: frfc.FastControl,
		})
		if err != nil {
			b.Fatal(err)
		}
		return benchScale(spec)
	}
	var perFlit, aon frfc.Result
	for i := 0; i < b.N; i++ {
		perFlit = frfc.Run(mk(false), 0.70)
		aon = frfc.Run(mk(true), 0.70)
	}
	b.ReportMetric(perFlit.AvgLatency, "perflit-lat70-cycles")
	b.ReportMetric(aon.AvgLatency, "allornothing-lat70-cycles")
	if perFlit.Saturated || aon.Saturated {
		b.Fatalf("ablation point saturated unexpectedly (perflit=%v aon=%v)", perFlit.Saturated, aon.Saturated)
	}
}

// BenchmarkAblationVCSharedPool regenerates the Section 5 control: pooling a
// VC router's buffers across its virtual channels ([TamFra92]) does NOT
// reproduce flit reservation's gain — the win comes from advance scheduling,
// not from pooled buffering.
func BenchmarkAblationVCSharedPool(b *testing.B) {
	mk := func(pooled bool) frfc.Spec {
		spec, err := frfc.Custom("VC8", frfc.Options{
			FlitReservation: false, VCs: 2, BufPerVC: 4,
			SharedPool: pooled, Wiring: frfc.FastControl,
		})
		if err != nil {
			b.Fatal(err)
		}
		return benchScale(spec)
	}
	var queued, pooled float64
	for i := 0; i < b.N; i++ {
		queued = frfc.SaturationThroughput(mk(false), satResolution)
		pooled = frfc.SaturationThroughput(mk(true), satResolution)
	}
	b.ReportMetric(queued*100, "VC8-queued-sat-%cap")
	b.ReportMetric(pooled*100, "VC8-pooled-sat-%cap")
}

// BenchmarkAblationWideControlFlit measures flit reservation with one
// control flit leading d=4 data flits (Section 5): control bandwidth drops,
// at the cost of data flits more often overtaking their control flit.
func BenchmarkAblationWideControlFlit(b *testing.B) {
	mk := func(d int) frfc.Spec {
		spec, err := frfc.Custom("FR6", frfc.Options{
			FlitReservation: true, DataBuffers: 6, CtrlVCs: 2,
			LeadsPerCtrl: d, Wiring: frfc.FastControl,
		})
		if err != nil {
			b.Fatal(err)
		}
		return benchScale(spec)
	}
	var d1, d4 float64
	for i := 0; i < b.N; i++ {
		d1 = frfc.SaturationThroughput(mk(1), satResolution)
		d4 = frfc.SaturationThroughput(mk(4), satResolution)
	}
	b.ReportMetric(d1*100, "d1-sat-%cap")
	b.ReportMetric(d4*100, "d4-sat-%cap")
}

// BenchmarkAblationEagerAllocation regenerates the Figure 10 comparison of
// buffer-allocation policies. The executed (deferred) policy binds a buffer
// only when the flit arrives and provably never needs a transfer; a shadow
// ledger replays the same schedule under allocate-at-reservation-time and
// counts the buffer-to-buffer transfers that policy would force.
func BenchmarkAblationEagerAllocation(b *testing.B) {
	spec, err := frfc.Custom("FR6-eager", frfc.Options{
		FlitReservation: true, DataBuffers: 6, CtrlVCs: 2,
		TrackEagerTransfers: true, Wiring: frfc.FastControl,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec = benchScale(spec)
	var r frfc.Result
	for i := 0; i < b.N; i++ {
		r = frfc.Run(spec, 0.70)
	}
	b.ReportMetric(float64(r.EagerTransfers), "eager-transfers")
	perK := 0.0
	if r.EagerResidencies > 0 {
		perK = 1000 * float64(r.EagerTransfers) / float64(r.EagerResidencies)
	}
	b.ReportMetric(perK, "transfers/1k-residencies")
	if r.EagerResidencies == 0 {
		b.Fatal("eager ledger replayed no residencies — tracking is broken")
	}
}

// BenchmarkProbeDisabledOverhead guards the observability layer's cost
// contract: every probe call site in the routers, input ports and network
// interfaces is a nil check when no observer is attached, so a run with a
// disabled observer must stay within 2% of the plain hot path. Both arms are
// timed interleaved and compared on their minimum over several repetitions,
// which is robust to scheduler noise; the companion allocation guards live in
// internal/metrics and internal/trace (AllocsPerRun == 0), and
// TestRunObservedMatchesRun proves the results are bit-identical.
func BenchmarkProbeDisabledOverhead(b *testing.B) {
	spec := benchScale(frfc.FR6(frfc.FastControl, 5))
	disabled := frfc.NewObserver(frfc.ObserverOptions{})
	const reps = 5
	minPlain := time.Duration(math.MaxInt64)
	minDisabled := time.Duration(math.MaxInt64)
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			frfc.Run(spec, 0.50)
			if d := time.Since(t0); d < minPlain {
				minPlain = d
			}
			t0 = time.Now()
			frfc.RunObserved(spec, 0.50, disabled)
			if d := time.Since(t0); d < minDisabled {
				minDisabled = d
			}
		}
	}
	overhead := (float64(minDisabled)/float64(minPlain) - 1) * 100
	b.ReportMetric(overhead, "disabled-probe-overhead-%")
	if overhead > 2.0 {
		b.Fatalf("disabled-probe hot path regressed %.1f%% over plain Run (budget 2%%): plain %v, disabled %v",
			overhead, minPlain, minDisabled)
	}
}

// BenchmarkProfileDisabledOverhead guards the self-profiler's cost contract:
// the activity-accounting call sites added to the routers, interfaces and
// sinks (RouterTick, ComponentTick, the per-phase work counters) are all
// guarded by a cached nil registry pointer, so a metrics-observed run with
// profiling off must stay within 2% of the same run before profiling existed.
// Both arms attach a metrics observer — the profile guards fire either way —
// and differ only in ObserverOptions.Profile; timed interleaved on their
// minimum over several repetitions like BenchmarkProbeDisabledOverhead. The
// profiled arm is reported as a metric, not asserted: counter increments are
// cheap, but only the disabled path carries a hard budget. The budget
// defaults to the 2% contract; heavily shared machines whose timing noise
// exceeds that can widen it with BENCH_PROFILE_OVERHEAD_BUDGET_PCT (the same
// escape hatch scripts/bench.sh offers via BENCH_MAX_REGRESSION_PCT).
func BenchmarkProfileDisabledOverhead(b *testing.B) {
	spec := benchScale(frfc.FR6(frfc.FastControl, 5))
	budget := 2.0
	if v := os.Getenv("BENCH_PROFILE_OVERHEAD_BUDGET_PCT"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			budget = f
		}
	}
	const reps = 5
	minPlain := time.Duration(math.MaxInt64)
	minDisabled := time.Duration(math.MaxInt64)
	minProfiled := time.Duration(math.MaxInt64)
	round := func() {
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			frfc.Run(spec, 0.50)
			if d := time.Since(t0); d < minPlain {
				minPlain = d
			}
			t0 = time.Now()
			frfc.RunObserved(spec, 0.50, frfc.NewObserver(frfc.ObserverOptions{}))
			if d := time.Since(t0); d < minDisabled {
				minDisabled = d
			}
			t0 = time.Now()
			frfc.RunObserved(spec, 0.50, frfc.NewObserver(frfc.ObserverOptions{Profile: true}))
			if d := time.Since(t0); d < minProfiled {
				minProfiled = d
			}
		}
	}
	overhead := func() float64 { return (float64(minDisabled)/float64(minPlain) - 1) * 100 }
	for i := 0; i < b.N; i++ {
		round()
	}
	// A single-core machine under load can smear either arm past the budget;
	// confirm an apparent regression with extra rounds before failing.
	for extra := 0; overhead() > budget && extra < 2; extra++ {
		round()
	}
	b.ReportMetric(overhead(), "disabled-profile-overhead-%")
	b.ReportMetric((float64(minProfiled)/float64(minPlain)-1)*100, "enabled-profile-overhead-%")
	if o := overhead(); o > budget {
		b.Fatalf("profile-off hot path regressed %.1f%% over plain Run (budget %.1f%%): plain %v, disabled %v",
			o, budget, minPlain, minDisabled)
	}
}

// BenchmarkWaterfallDisabledOverhead guards the latency-provenance cost
// contract: the stage-ledger call sites threaded through every substrate's
// hot path (InjectStart, HeadWire, Blocked, Depart, Eject) are all guarded by
// a cached nil ledger pointer, so a metrics-off observed run with the
// waterfall disabled must stay within 2% of a plain Run. Both observed arms
// attach an observer — the ledger guards fire either way — and differ only in
// ObserverOptions.Waterfall; timed interleaved on their minimum over several
// repetitions like BenchmarkProfileDisabledOverhead. The armed ledger is
// reported as a metric, not asserted: per-packet stamps are cheap, but only
// the disabled path carries a hard budget. The budget defaults to the 2%
// contract; heavily shared machines whose timing noise exceeds that can widen
// it with BENCH_WATERFALL_OVERHEAD_BUDGET_PCT (the same escape hatch
// scripts/bench.sh offers via BENCH_MAX_REGRESSION_PCT).
func BenchmarkWaterfallDisabledOverhead(b *testing.B) {
	spec := benchScale(frfc.FR6(frfc.FastControl, 5))
	budget := 2.0
	if v := os.Getenv("BENCH_WATERFALL_OVERHEAD_BUDGET_PCT"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			budget = f
		}
	}
	const reps = 5
	minPlain := time.Duration(math.MaxInt64)
	minDisabled := time.Duration(math.MaxInt64)
	minArmed := time.Duration(math.MaxInt64)
	round := func() {
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			frfc.Run(spec, 0.50)
			if d := time.Since(t0); d < minPlain {
				minPlain = d
			}
			t0 = time.Now()
			frfc.RunObserved(spec, 0.50, frfc.NewObserver(frfc.ObserverOptions{}))
			if d := time.Since(t0); d < minDisabled {
				minDisabled = d
			}
			t0 = time.Now()
			frfc.RunObserved(spec, 0.50, frfc.NewObserver(frfc.ObserverOptions{Waterfall: true}))
			if d := time.Since(t0); d < minArmed {
				minArmed = d
			}
		}
	}
	overhead := func() float64 { return (float64(minDisabled)/float64(minPlain) - 1) * 100 }
	for i := 0; i < b.N; i++ {
		round()
	}
	// A single-core machine under load can smear either arm past the budget;
	// confirm an apparent regression with extra rounds before failing.
	for extra := 0; overhead() > budget && extra < 2; extra++ {
		round()
	}
	b.ReportMetric(overhead(), "disabled-waterfall-overhead-%")
	b.ReportMetric((float64(minArmed)/float64(minPlain)-1)*100, "enabled-waterfall-overhead-%")
	if o := overhead(); o > budget {
		b.Fatalf("waterfall-off hot path regressed %.1f%% over plain Run (budget %.1f%%): plain %v, disabled %v",
			o, budget, minPlain, minDisabled)
	}
}

// BenchmarkTimeSeriesEnabledOverhead guards the telemetry recorder's cost
// contract: recording a per-epoch time series at the default epoch must stay
// within 2% of a metrics-only observed run — the recorder touches the hot path
// once per cycle (a modulus test) and snapshots the registry only once per
// epoch. Both arms construct a fresh observer inside the timed region so the
// comparison is symmetric, and are timed interleaved on their minimum over
// several repetitions like BenchmarkProbeDisabledOverhead.
func BenchmarkTimeSeriesEnabledOverhead(b *testing.B) {
	spec := benchScale(frfc.FR6(frfc.FastControl, 5))
	const reps = 5
	minMetrics := time.Duration(math.MaxInt64)
	minSeries := time.Duration(math.MaxInt64)
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			frfc.RunObserved(spec, 0.50, frfc.NewObserver(frfc.ObserverOptions{Metrics: true}))
			if d := time.Since(t0); d < minMetrics {
				minMetrics = d
			}
			t0 = time.Now()
			frfc.RunObserved(spec, 0.50, frfc.NewObserver(frfc.ObserverOptions{TimeSeries: true}))
			if d := time.Since(t0); d < minSeries {
				minSeries = d
			}
		}
	}
	overhead := (float64(minSeries)/float64(minMetrics) - 1) * 100
	b.ReportMetric(overhead, "timeseries-overhead-%")
	if overhead > 2.0 {
		b.Fatalf("time-series recorder costs %.1f%% over a metrics-only run (budget 2%%): metrics %v, series %v",
			overhead, minMetrics, minSeries)
	}
}

// BenchmarkSweepSerialVsParallel measures the experiment harness's worker-pool
// speedup on a small FR6+VC8 load grid: the same jobs run on 1 worker and on
// 4, every iteration re-checking that the parallel results are bit-identical
// to serial (wall-clock Elapsed stripped — it is display metadata). The
// speedup-4w metric is the acceptance bar: on a machine with at least 4 CPUs
// it must reach 2x; on smaller machines (this container has 1) the metric is
// reported but not asserted, since the pool cannot beat the clock without
// cores to run on.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	specs := []frfc.Spec{
		benchScale(frfc.FR6(frfc.FastControl, 5)),
		benchScale(frfc.VC8(frfc.FastControl, 5)),
	}
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	var jobs []frfc.Job
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, frfc.Job{Spec: s, Load: l})
		}
	}
	ctx := context.Background()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := frfc.RunJobs(ctx, jobs, frfc.ParallelOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		serialTime := time.Since(t0)

		t0 = time.Now()
		parallel, err := frfc.RunJobs(ctx, jobs, frfc.ParallelOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		parallelTime := time.Since(t0)

		for j := range serial {
			serial[j].Elapsed, parallel[j].Elapsed = 0, 0
		}
		if !reflect.DeepEqual(serial, parallel) {
			b.Fatal("parallel sweep diverged from serial — determinism contract broken")
		}
		speedup = float64(serialTime) / float64(parallelTime)
	}
	b.ReportMetric(speedup, "speedup-4w")
	if runtime.GOMAXPROCS(0) >= 4 && speedup < 2.0 {
		b.Fatalf("4-worker sweep speedup %.2fx below the 2x bar on %d CPUs",
			speedup, runtime.GOMAXPROCS(0))
	}
}

// BenchmarkRelatedWorkLineage measures the Section 2 lineage on one workload
// (5-flit packets, fast-control-era wiring): store-and-forward, virtual
// cut-through, wormhole, virtual channels, and flit reservation. The
// historical progression shows in the base latencies — packet-serialized
// store-and-forward worst, flit reservation best — which the benchmark
// asserts.
func BenchmarkRelatedWorkLineage(b *testing.B) {
	specs := []frfc.Spec{
		frfc.StoreAndForwardSpec(frfc.FastControl, 2, 5),
		frfc.CutThroughSpec(frfc.FastControl, 2, 5),
		frfc.WormholeSpec(frfc.FastControl, 8, 5),
		frfc.VC8(frfc.FastControl, 5),
		frfc.FR6(frfc.FastControl, 5),
	}
	base := make([]float64, len(specs))
	for i := 0; i < b.N; i++ {
		for j, s := range specs {
			base[j] = frfc.BaseLatency(s.WithSampling(400, 800))
		}
	}
	for j, s := range specs {
		b.ReportMetric(base[j], s.Name()+"-base-cycles")
	}
	saf, vct, fr := base[0], base[1], base[4]
	if !(saf > vct) {
		b.Fatalf("lineage shape violated: store-and-forward base %.1f not above cut-through %.1f", saf, vct)
	}
	for j := 1; j < len(specs)-1; j++ {
		if fr >= base[j] {
			b.Fatalf("lineage shape violated: FR base %.1f not below %s's %.1f", fr, specs[j].Name(), base[j])
		}
	}
}

// BenchmarkCircuitAmortization measures the Section 2 observation about
// circuit switching (the substrate of wave switching): its gains are "only
// realizable if the circuit setup time can be amortized over many message
// deliveries". For short messages flit reservation wins easily; for very
// long messages the unbuffered circuit catches up.
func BenchmarkCircuitAmortization(b *testing.B) {
	var csShort, frShort, csLong, frLong float64
	for i := 0; i < b.N; i++ {
		csShort = frfc.BaseLatency(frfc.CircuitSpec(frfc.FastControl, 5).WithSampling(300, 600))
		frShort = frfc.BaseLatency(frfc.FR6(frfc.FastControl, 5).WithSampling(300, 600))
		csLong = frfc.BaseLatency(frfc.CircuitSpec(frfc.FastControl, 64).WithSampling(150, 600))
		frLong = frfc.BaseLatency(frfc.FR6(frfc.FastControl, 64).WithSampling(150, 600))
	}
	b.ReportMetric(csShort, "CS-5flit-cycles")
	b.ReportMetric(frShort, "FR6-5flit-cycles")
	b.ReportMetric(csLong, "CS-64flit-cycles")
	b.ReportMetric(frLong, "FR6-64flit-cycles")
	if csShort <= frShort {
		b.Fatalf("circuit switching (%.1f) beat FR (%.1f) on short messages; setup cost is missing", csShort, frShort)
	}
	// Relative setup overhead must shrink with message length.
	if (csLong-frLong)/frLong >= (csShort-frShort)/frShort {
		b.Fatalf("circuit setup did not amortize: short gap %.0f%%, long gap %.0f%%",
			(csShort-frShort)/frShort*100, (csLong-frLong)/frLong*100)
	}
}
