module frfc

go 1.22
