package frfc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestTimeSeriesExport(t *testing.T) {
	obs := NewObserver(ObserverOptions{TimeSeries: true})
	r := RunObserved(smallSpec(t, FR6(FastControl, 5)), 0.3, obs)

	// TimeSeries implies Metrics; read the registry total for the invariant.
	var mj bytes.Buffer
	if err := obs.WriteMetricsJSON(&mj); err != nil {
		t.Fatalf("TimeSeries did not imply Metrics: %v", err)
	}
	var reg struct {
		Nodes []struct {
			Ejected int64 `json:"ejected"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(mj.Bytes(), &reg); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range reg.Nodes {
		total += n.Ejected
	}

	var csv bytes.Buffer
	if err := obs.WriteTimeSeriesCSV(&csv); err != nil {
		t.Fatalf("WriteTimeSeriesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	header := strings.Split(lines[0], ",")
	ejCol := -1
	for i, h := range header {
		if h == "ejected" {
			ejCol = i
		}
	}
	if ejCol < 0 {
		t.Fatalf("no ejected column in %v", header)
	}
	var sum int64
	for _, line := range lines[1:] {
		v, err := strconv.ParseInt(strings.Split(line, ",")[ejCol], 10, 64)
		if err != nil {
			t.Fatalf("bad ejected cell in %q: %v", line, err)
		}
		sum += v
	}
	if total == 0 || sum != total {
		t.Fatalf("CSV ejected column sums to %d, registry total %d", sum, total)
	}
	// One row per epoch, partial final window included.
	wantRows := int(r.Cycles) / 64
	if r.Cycles%64 != 0 {
		wantRows++
	}
	if len(lines)-1 != wantRows {
		t.Fatalf("CSV has %d rows over %d cycles at epoch 64, want %d", len(lines)-1, r.Cycles, wantRows)
	}
	if pts, dropped := obs.TimeSeriesLen(); pts != wantRows || dropped != 0 {
		t.Fatalf("TimeSeriesLen = %d/%d, want %d/0", pts, dropped, wantRows)
	}

	var js bytes.Buffer
	if err := obs.WriteTimeSeriesJSON(&js); err != nil {
		t.Fatalf("WriteTimeSeriesJSON: %v", err)
	}
	var doc struct {
		Epoch  int64 `json:"epoch"`
		Points []struct {
			Ejected int64 `json:"ejected"`
		} `json:"points"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("time-series JSON invalid: %v", err)
	}
	if doc.Epoch != 64 || len(doc.Points) != wantRows {
		t.Fatalf("JSON export wrong: epoch=%d points=%d", doc.Epoch, len(doc.Points))
	}
}

func TestTimeSeriesErrorsWhenOff(t *testing.T) {
	var buf bytes.Buffer
	obs := NewObserver(ObserverOptions{Metrics: true})
	if err := obs.WriteTimeSeriesCSV(&buf); err == nil {
		t.Fatal("time-series CSV export succeeded with recording off")
	}
	var nilObs *Observer
	if err := nilObs.WriteTimeSeriesJSON(&buf); err == nil {
		t.Fatal("nil observer time-series export succeeded")
	}
	if p, d := nilObs.TimeSeriesLen(); p != 0 || d != 0 {
		t.Fatal("nil observer reported time-series points")
	}
}

func TestRunLiveMatchesRunAndServes(t *testing.T) {
	st, addr, err := ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if addr != st.Addr() {
		t.Fatalf("ServeStatus returned %q, Addr says %q", addr, st.Addr())
	}

	spec := smallSpec(t, FR6(FastControl, 5))
	base := Run(spec, 0.3)
	obs := NewObserver(ObserverOptions{Metrics: true})
	live := RunLive(spec, 0.3, obs, st)
	if base != live {
		t.Fatalf("live publishing changed the simulation:\nbase: %+v\nlive: %+v", base, live)
	}

	body := httpGet(t, "http://"+st.Addr()+"/status")
	var snap struct {
		Run *struct {
			Phase     string `json:"phase"`
			Delivered int    `json:"delivered"`
		} `json:"run"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if snap.Run == nil || snap.Run.Phase != "done" || snap.Run.Delivered != base.SampledDelivered {
		t.Fatalf("run view wrong: %s", body)
	}
	mbody := httpGet(t, "http://"+st.Addr()+"/metrics")
	if !strings.Contains(mbody, "frfc_ejected_flits_total") {
		t.Fatalf("/metrics missing counters:\n%s", mbody[:min(len(mbody), 400)])
	}
}

func TestCampaignWithStatusBitIdentical(t *testing.T) {
	spec := FR6(FastControl, 5).WithMeshRadix(4).WithSampling(150, 300)
	jobs := []Job{{Spec: spec, Load: 0.2}, {Spec: spec, Load: 0.4}}

	bare, err := RunJobs(context.Background(), jobs, ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	st, _, err := ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Graceful shutdown must release the port without erroring.
		if err := st.Shutdown(2 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	served, err := RunJobs(context.Background(), jobs, ParallelOptions{Workers: 2, Status: st})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bare {
		// Elapsed is wall-clock and legitimately varies; everything the
		// simulation computed must match exactly.
		if !reflect.DeepEqual(bare[i].Result, served[i].Result) || bare[i].Hash != served[i].Hash {
			t.Fatalf("status server perturbed job %d:\nbare:   %+v\nserved: %+v", i, bare[i].Result, served[i].Result)
		}
	}

	body := httpGet(t, "http://"+st.Addr()+"/status")
	var snap struct {
		Campaign *struct {
			Total, Done int
		} `json:"campaign"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Campaign == nil || snap.Campaign.Done != 2 || snap.Campaign.Total != 2 {
		t.Fatalf("campaign view wrong: %s", body)
	}
	mbody := httpGet(t, "http://"+st.Addr()+"/metrics")
	if !strings.Contains(mbody, "frfc_res_hits_total") {
		t.Fatalf("/metrics missing merged campaign counters:\n%s", mbody[:min(len(mbody), 400)])
	}
}
