// Command paperfigs regenerates every table and figure of the paper's
// evaluation section from the simulator:
//
//	Table 1  storage overhead breakdown (analytic)
//	Table 2  bandwidth overhead per data flit (analytic)
//	Figure 5 latency vs offered traffic, 5-flit packets, fast control
//	Figure 6 latency vs offered traffic, 21-flit packets, fast control
//	Figure 7 scheduling-horizon sweep (16..128 cycles) on FR6
//	Figure 8 leading control with 1-, 2- and 4-cycle leads
//	Figure 9 1-cycle leading control vs virtual channels on 1-cycle wires
//	Table 3  summary: base latency, latency at 50% capacity, saturation
//	         throughput for every configuration
//
// plus the Section 4.2 buffer-occupancy statistic and the Section 5
// ablations (all-or-nothing scheduling, VC shared pool, eager buffer
// allocation).
//
// Usage:
//
//	paperfigs -all -scale quick          # everything, fast (minutes)
//	paperfigs -fig 5 -scale full         # one figure at paper scale
//	paperfigs -table 3 -workers 8        # fan the summary over 8 workers
//
// The sweeps and Table 3 run on the internal/harness worker pool; -workers
// sizes it (0 = NumCPU) and never changes the printed numbers — every point
// owns its own network and RNG, and rows print in spec/load order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/overhead"
	"frfc/internal/sim"
)

var (
	scaleFlag   = flag.String("scale", "quick", "measurement effort: quick, standard, or full (paper protocol)")
	workersFlag = flag.Int("workers", 0, "worker pool size for the sweeps (0 = NumCPU); any count yields identical output")
)

func pool() harness.Options { return harness.Options{Workers: *workersFlag} }

func scaled(s experiment.Spec) experiment.Spec {
	switch *scaleFlag {
	case "quick":
		return s.Scaled(3000, 2000)
	case "standard":
		return s.Scaled(10000, 5000)
	case "full":
		return s.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "paperfigs: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
		return s
	}
}

func main() {
	var (
		fig   = flag.Int("fig", 0, "regenerate one figure (5-9)")
		table = flag.Int("table", 0, "regenerate one table (1-3)")
		extra = flag.String("extra", "", "extra experiment: occupancy, ablations")
		all   = flag.Bool("all", false, "regenerate everything")
	)
	flag.Parse()

	ran := false
	if *all || *table == 1 {
		table1()
		ran = true
	}
	if *all || *table == 2 {
		table2()
		ran = true
	}
	if *all || *fig == 5 {
		figure5()
		ran = true
	}
	if *all || *fig == 6 {
		figure6()
		ran = true
	}
	if *all || *fig == 7 {
		figure7()
		ran = true
	}
	if *all || *fig == 8 {
		figure8()
		ran = true
	}
	if *all || *fig == 9 {
		figure9()
		ran = true
	}
	if *all || *table == 3 {
		table3()
		ran = true
	}
	if *all || *extra == "occupancy" {
		occupancy()
		ran = true
	}
	if *all || *extra == "ablations" {
		ablations()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func table1() {
	fmt.Println("== Table 1: storage overhead (bits per node) ==")
	type cfg struct {
		name string
		b    overhead.StorageBreakdown
	}
	cfgs := []cfg{
		{"VC8", overhead.VCStorage(overhead.VCParams{FlitBits: 256, TypeBits: 2, DataBuffers: 8, VCs: 2, Ports: 5})},
		{"VC16", overhead.VCStorage(overhead.VCParams{FlitBits: 256, TypeBits: 2, DataBuffers: 16, VCs: 4, Ports: 5})},
		{"VC32", overhead.VCStorage(overhead.VCParams{FlitBits: 256, TypeBits: 2, DataBuffers: 32, VCs: 8, Ports: 5})},
		{"FR6", overhead.FRStorage(overhead.FRParams{FlitBits: 256, TypeBits: 2, DataBuffers: 6, CtrlBuffers: 6, CtrlVCs: 2, Leads: 1, Horizon: 32, Ports: 5})},
		{"FR13", overhead.FRStorage(overhead.FRParams{FlitBits: 256, TypeBits: 2, DataBuffers: 13, CtrlBuffers: 12, CtrlVCs: 4, Leads: 1, Horizon: 32, Ports: 5})},
	}
	fmt.Printf("%-8s %10s %8s %8s %8s %8s %10s %8s\n",
		"config", "data", "ctrl", "queueptr", "out-res", "in-res", "bits/node", "flits/ch")
	for _, c := range cfgs {
		fmt.Printf("%-8s %10d %8d %8d %8d %8d %10d %8.2f\n",
			c.name, c.b.DataBuffers, c.b.CtrlBuffers, c.b.QueuePointers,
			c.b.OutputResTable, c.b.InputResTable, c.b.BitsPerNode(), c.b.FlitsPerInput(256, 5))
	}
	fmt.Println()
}

func table2() {
	fmt.Println("== Table 2: bandwidth overhead per data flit (bits) ==")
	vcp := overhead.BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2}
	frp := overhead.BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2, Leads: 1, Horizon: 32}
	fmt.Printf("virtual channel : %.2f\n", overhead.VCBandwidthPerFlit(vcp))
	fmt.Printf("flit reservation: %.2f\n", overhead.FRBandwidthPerFlit(frp))
	fmt.Printf("FR penalty      : %.2f%% of a 256-bit flit\n\n", overhead.FRBandwidthPenalty(frp, vcp, 256)*100)
}

func sweepFig(title string, specs []experiment.Spec, loads []float64) {
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("%-8s", "load%")
	for _, s := range specs {
		fmt.Printf(" %14s", s.Name)
	}
	fmt.Println()
	toRun := make([]experiment.Spec, len(specs))
	for i, s := range specs {
		toRun[i] = scaled(s)
	}
	rows, err := harness.SweepSpecs(context.Background(), toRun, loads, harness.SweepOptions{Options: pool()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %s: %v\n", title, err)
		os.Exit(1)
	}
	for j, l := range loads {
		fmt.Printf("%-8.1f", l*100)
		for i := range specs {
			jr := rows[i][j]
			switch {
			case jr.Err != "":
				fmt.Printf(" %14s", "failed")
			case jr.Result.Saturated:
				fmt.Printf(" %14s", "saturated")
			default:
				fmt.Printf(" %14.2f", jr.Result.AvgLatency)
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

func loadsTo(hi float64) []float64 {
	var out []float64
	for l := 0.10; l <= hi+1e-9; l += 0.05 {
		out = append(out, l)
	}
	return out
}

func figure5() {
	sweepFig("Figure 5: 5-flit packets, fast control",
		[]experiment.Spec{
			experiment.VC8(experiment.FastControl, 5),
			experiment.VC16(experiment.FastControl, 5),
			experiment.FR6(experiment.FastControl, 5),
			experiment.FR13(experiment.FastControl, 5),
		}, loadsTo(0.90))
}

func figure6() {
	sweepFig("Figure 6: 21-flit packets, fast control",
		[]experiment.Spec{
			experiment.VC16(experiment.FastControl, 21),
			experiment.VC32(experiment.FastControl, 21),
			experiment.FR6(experiment.FastControl, 21),
			experiment.FR13(experiment.FastControl, 21),
		}, loadsTo(0.80))
}

func figure7() {
	var specs []experiment.Spec
	for _, h := range []sim.Cycle{16, 32, 64, 128} {
		s := experiment.FR6(experiment.FastControl, 5)
		s.Name = fmt.Sprintf("FR6-s%d", h)
		s.FR.Horizon = h
		specs = append(specs, s)
	}
	sweepFig("Figure 7: FR6 scheduling horizon 16-128 cycles", specs, loadsTo(0.85))
}

func figure8() {
	sweepFig("Figure 8: FR6 leading control, leads of 1, 2, 4 cycles",
		[]experiment.Spec{
			experiment.FRLead(1, 5),
			experiment.FRLead(2, 5),
			experiment.FRLead(4, 5),
		}, loadsTo(0.85))
}

func figure9() {
	fr13 := experiment.FRSpec("FR13-lead1", experiment.LeadingControl, 13, 4, 1, 5)
	sweepFig("Figure 9: 1-cycle leading control vs virtual channels (1-cycle wires)",
		[]experiment.Spec{
			experiment.FRLead(1, 5),
			fr13,
			experiment.VC8(experiment.LeadingControl, 5),
			experiment.VC16(experiment.LeadingControl, 5),
		}, loadsTo(0.85))
}

func table3() {
	o := experiment.SaturationOptions{Resolution: 0.02}
	groups := []struct {
		title string
		specs []experiment.Spec
	}{
		{"fast control, 5-flit packets", []experiment.Spec{
			experiment.FR6(experiment.FastControl, 5),
			experiment.FR13(experiment.FastControl, 5),
			experiment.VC8(experiment.FastControl, 5),
			experiment.VC16(experiment.FastControl, 5),
			experiment.VC32(experiment.FastControl, 5),
		}},
		{"fast control, 21-flit packets", []experiment.Spec{
			experiment.FR6(experiment.FastControl, 21),
			experiment.FR13(experiment.FastControl, 21),
			experiment.VC8(experiment.FastControl, 21),
			experiment.VC16(experiment.FastControl, 21),
			experiment.VC32(experiment.FastControl, 21),
		}},
		{"leading control, 5-flit packets", []experiment.Spec{
			experiment.FRLead(1, 5),
			experiment.FRSpec("FR13-lead1", experiment.LeadingControl, 13, 4, 1, 5),
			experiment.VC8(experiment.LeadingControl, 5),
			experiment.VC16(experiment.LeadingControl, 5),
			experiment.VC32(experiment.LeadingControl, 5),
		}},
	}
	fmt.Println("== Table 3: summary ==")
	for _, g := range groups {
		specs := make([]experiment.Spec, len(g.specs))
		for i, s := range g.specs {
			specs[i] = scaled(s)
		}
		rows, err := harness.SummarizeAll(context.Background(), specs, o, pool())
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: table 3: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiment.FormatSummary(g.title, rows))
		fmt.Println()
	}
}

func occupancy() {
	fmt.Println("== Section 4.2: buffer-pool occupancy near saturation ==")
	fr := experiment.Run(scaled(experiment.FR6(experiment.FastControl, 21)), 0.60)
	vc := experiment.Run(scaled(experiment.VC8(experiment.FastControl, 21)), 0.52)
	fmt.Printf("FR6 central pool full %.1f%% of cycles at 60%% load, its saturation edge (paper: ~40%%)\n", fr.PoolFullFraction*100)
	fmt.Printf("VC8 central pool full %.1f%% of cycles at 52%% load, its saturation edge (paper: <5%%)\n\n", vc.PoolFullFraction*100)
}

func ablations() {
	fmt.Println("== Section 5 ablations ==")

	// Per-flit vs all-or-nothing scheduling, with wide control flits
	// (d=4) where the policies actually differ.
	perFlit := experiment.FR6(experiment.FastControl, 5)
	perFlit.Name = "FR6-d4"
	perFlit.FR.LeadsPerCtrl = 4
	aon := perFlit
	aon.Name = "FR6-d4-AoN"
	aon.FR.AllOrNothing = true
	for _, s := range []experiment.Spec{perFlit, aon} {
		r := experiment.Run(scaled(s), 0.65)
		fmt.Printf("%-12s latency at 65%% load: %8.2f cycles (saturated=%v)\n", s.Name, r.AvgLatency, r.Saturated)
	}

	// Virtual channels with a shared buffer pool [TamFra92]: the paper
	// saw no throughput improvement.
	vq := experiment.VC8(experiment.FastControl, 5)
	vp := vq
	vp.Name = "VC8-pooled"
	vp.VC.SharedPool = true
	o := experiment.SaturationOptions{Resolution: 0.02}
	fmt.Printf("%-12s saturation: %4.0f%% of capacity\n", vq.Name, experiment.SaturationThroughput(scaled(vq), o)*100)
	fmt.Printf("%-12s saturation: %4.0f%% of capacity (paper: no improvement)\n", vp.Name, experiment.SaturationThroughput(scaled(vp), o)*100)
	fmt.Println()
}
