// Command overhead prints the storage and bandwidth cost models of the
// paper's Tables 1 and 2.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	fmt.Println("Table 1: storage overhead (bits per node; f=256, t=2, d=1, s=32, 5 ports)")
	fmt.Printf("%-22s %8s %8s %8s %8s %8s\n", "", "VC8", "VC16", "VC32", "FR6", "FR13")
	rows := frfc.StorageTable()
	byName := map[string]frfc.StorageRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	order := []string{"VC8", "VC16", "VC32", "FR6", "FR13"}
	line := func(label string, f func(frfc.StorageRow) string) {
		fmt.Printf("%-22s", label)
		for _, n := range order {
			fmt.Printf(" %8s", f(byName[n]))
		}
		fmt.Println()
	}
	i := func(v int) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	line("data buffers", func(r frfc.StorageRow) string { return i(r.DataBuffers) })
	line("control buffers", func(r frfc.StorageRow) string { return i(r.CtrlBuffers) })
	line("queue pointers", func(r frfc.StorageRow) string { return i(r.QueuePointers) })
	line("output res. table", func(r frfc.StorageRow) string { return i(r.OutputResTable) })
	line("input res. table", func(r frfc.StorageRow) string { return i(r.InputResTable) })
	line("bits per node", func(r frfc.StorageRow) string { return i(r.BitsPerNode) })
	line("flits per channel", func(r frfc.StorageRow) string { return fmt.Sprintf("%.2f", r.FlitsPerChannel) })

	fmt.Println()
	fmt.Println("Table 2: bandwidth overhead per data flit (bits; n=6, L=5, v=2, d=1, s=32)")
	bw, penalty := frfc.BandwidthTable()
	for _, r := range bw {
		fmt.Printf("%-22s %8.2f\n", r.Name, r.BitsPerFlit)
	}
	fmt.Printf("%-22s %7.2f%% of a 256-bit flit\n", "FR penalty", penalty*100)
}
