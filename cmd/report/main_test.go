package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeLine builds one JSONL store row the way internal/harness writes them:
// lowercase envelope keys, result object with Go field names.
func storeLine(hash, spec string, load float64, result string) string {
	return fmt.Sprintf(`{"hash":%q,"spec":%q,"load":%g,"result":%s}`, hash, spec, load, result)
}

func writeFixtures(t *testing.T, dir string) (store, bench, baseline, benchJSON string) {
	t.Helper()
	store = filepath.Join(dir, "campaign.jsonl")
	lines := []string{
		// Deliberately out of order: the report must sort by (spec, load).
		storeLine("h3", "VC8", 0.4,
			`{"AvgLatency":31.25,"CI95":1.2,"BatchCI95":0.8,"Batches":10,"P99":74,"AcceptedLoad":0.39,"SampledDelivered":900,"SampleSize":900,"ProfTicks":4000,"ProfActiveTicks":1000,"ProfIdleFraction":0.75}`),
		storeLine("h1", "FR6", 0.2,
			`{"AvgLatency":22.5,"CI95":0.9,"BatchCI95":0.5,"Batches":12,"P99":41,"AcceptedLoad":0.2,"SampledDelivered":800,"SampleSize":800,"ProfTicks":5000,"ProfActiveTicks":2000,"ProfIdleFraction":0.6,"ProfSchedWork":100,"ProfArbWork":300,"ProfSwitchWork":500,"ProfCreditWork":100}`),
		storeLine("h2", "FR6", 0.6,
			`{"AvgLatency":48.75,"CI95":2.1,"Batches":0,"P99":120,"AcceptedLoad":0.55,"Saturated":true,"SampledDelivered":700,"SampleSize":800,"DroppedFlits":12,"RetriedPackets":3,"DeliveredFraction":0.875}`),
		`not json at all`,
		// A later line for an existing hash supersedes the earlier one.
		storeLine("h1", "FR6", 0.2,
			`{"AvgLatency":22.51,"CI95":0.9,"BatchCI95":0.51,"Batches":12,"P99":42,"AcceptedLoad":0.2,"SampledDelivered":800,"SampleSize":800,"ProfTicks":5000,"ProfActiveTicks":2000,"ProfIdleFraction":0.6,"ProfSchedWork":100,"ProfArbWork":300,"ProfSwitchWork":500,"ProfCreditWork":100,"WaterfallPackets":800,"WaterfallTotal":18000,"WaterfallQueue":400,"WaterfallReserve":800,"WaterfallArb":1600,"WaterfallStall":1200,"WaterfallSched":2000,"WaterfallLink":10000,"WaterfallDrain":2000}`),
	}
	if err := os.WriteFile(store, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	bench = filepath.Join(dir, "latest.txt")
	os.WriteFile(bench, []byte(`goos: linux
goarch: amd64
pkg: frfc
BenchmarkTable1StorageOverhead   	       1	     20000 ns/op	         1.020 ratio
BenchmarkProfileDisabledOverhead 	       1	      9000 ns/op	         0.400 overhead-pct
PASS
`), 0o644)

	baseline = filepath.Join(dir, "baseline.txt")
	os.WriteFile(baseline, []byte(`goos: linux
BenchmarkTable1StorageOverhead   	       1	     25000 ns/op
PASS
`), 0o644)

	benchJSON = filepath.Join(dir, "latest.json")
	os.WriteFile(benchJSON, []byte(`{
  "BenchmarkTable1StorageOverhead": {"nsPerOp": 20000, "bytesPerOp": 512, "allocsPerOp": 7}
}`), 0o644)
	return store, bench, baseline, benchJSON
}

// TestReportDeterministicAndComplete regenerates the report twice and checks
// it is byte-identical, with the cross-substrate table, fault columns,
// profiling summary and bench deltas all present.
func TestReportDeterministicAndComplete(t *testing.T) {
	dir := t.TempDir()
	store, bench, baseline, benchJSON := writeFixtures(t, dir)
	out1 := filepath.Join(dir, "BENCHMARK.md")
	out2 := filepath.Join(dir, "BENCHMARK2.md")

	// The fixture carries a deliberately undecodable line, so these runs
	// need -lenient; strict mode is covered by TestReportStrictMalformed.
	args := []string{"-lenient", "-bench", bench, "-baseline", baseline, "-bench-json", benchJSON}
	var stdout, stderr bytes.Buffer
	if code := run(append(args, "-out", out1, store), &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr.String())
	}
	if code := run(append(args, "-out", out2, store), &stdout, &stderr); code != 0 {
		t.Fatalf("second exit = %d; stderr:\n%s", code, stderr.String())
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("report not byte-identical across reruns")
	}
	got := string(a)

	// Cross-substrate table: sorted by spec then load, superseding row kept,
	// undecodable line counted.
	iFR2 := strings.Index(got, "| FR6 | 20.0 | 22.51 | 0.51 |")
	iFR6 := strings.Index(got, "| FR6 | 60.0 | 48.75 | 2.10 |")
	iVC := strings.Index(got, "| VC8 | 40.0 | 31.25 | 0.80 |")
	if iFR2 < 0 || iFR6 < 0 || iVC < 0 || !(iFR2 < iFR6 && iFR6 < iVC) {
		t.Fatalf("cross-substrate rows missing or misordered:\n%s", got)
	}
	for _, want := range []string{
		"3 points (1 undecodable lines skipped)",
		"| yes |", // saturated column on the 60% row
		"### Fault and integrity delivery",
		"| FR6 | 60.0 | 87.5 | 0 | 12 | 3 |",
		"### Where the cycles go (latency waterfall)",
		"| FR6 | 20.0 | 0.50 | 1.00 | 2.00 | 1.50 | 2.50 | 12.50 | 2.50 | 22.50 |",
		"### Self-profiling",
		"2 of 3 points carried activity accounting",
		"Idle component ticks: 66.7% (3000 active of 9000 total)",
		"sched 10.0%, arb 30.0%, switch 50.0%, credit 10.0%",
		"## Benchmarks",
		"| BenchmarkTable1StorageOverhead | 25000 | 20000 | -20.0% | 512 | 7 |",
		"| BenchmarkProfileDisabledOverhead | — | 9000 | — | — | — |",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "h1") || strings.Contains(got, "h2") {
		t.Fatalf("hashes leaked into the report:\n%s", got)
	}
}

func TestReportStdoutAndErrors(t *testing.T) {
	dir := t.TempDir()
	store, _, _, _ := writeFixtures(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-lenient", store}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "# Benchmark Report") {
		t.Fatalf("stdout missing report:\n%s", stdout.String())
	}

	stderr.Reset()
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-input exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "nothing to report") {
		t.Fatalf("stderr = %q", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{filepath.Join(dir, "missing.jsonl")}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing-store exit = %d", code)
	}
}

// TestReportStrictMalformed checks the default strict mode: a store with an
// undecodable line fails with a non-zero exit naming the file and the
// 1-based line number, and no report is written.
func TestReportStrictMalformed(t *testing.T) {
	dir := t.TempDir()
	store, _, _, _ := writeFixtures(t, dir) // bad line is physical line 4
	out := filepath.Join(dir, "BENCHMARK.md")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", out, store}, &stdout, &stderr); code != 2 {
		t.Fatalf("strict exit = %d, want 2; stderr:\n%s", code, stderr.String())
	}
	want := fmt.Sprintf("%s:4: malformed record", store)
	if !strings.Contains(stderr.String(), want) {
		t.Fatalf("stderr = %q, want it to contain %q", stderr.String(), want)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("strict failure still wrote %s", out)
	}

	// A record that decodes but lacks the hash key is malformed too.
	noHash := filepath.Join(dir, "nohash.jsonl")
	if err := os.WriteFile(noHash, []byte(`{"spec":"FR6","load":0.2}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{noHash}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing-hash exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), noHash+":1: malformed record: missing hash") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}
