// Command report turns campaign result stores and benchmark logs into a
// committed, human-readable BENCHMARK.md.
//
// Inputs are the JSONL stores a sweep writes with -out (one table per store,
// rows sorted by configuration and load) and the benchmark logs scripts/
// bench.sh maintains (latest vs baseline, with regression deltas). The
// output is deterministic — no timestamps, stable ordering — so re-running
// the command over unchanged inputs reproduces the committed file byte for
// byte, which is what makes the report reviewable in diffs.
//
// Malformed store lines are an error: the command exits non-zero naming the
// offending file and line number, so a corrupted store cannot silently
// produce a report missing rows. Pass -lenient to restore the old
// skip-and-count behavior (useful over stores healed after a crash).
//
// Usage:
//
//	report -out BENCHMARK.md benchmarks/campaign.jsonl
//	report -bench benchmarks/latest.txt -baseline benchmarks/baseline.txt \
//	       -bench-json benchmarks/latest.json -out BENCHMARK.md benchmarks/campaign.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"frfc/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchPath    = fs.String("bench", "", "benchmark log to report (go test -bench output, e.g. benchmarks/latest.txt)")
		baselinePath = fs.String("baseline", "", "baseline benchmark log to diff -bench against (e.g. benchmarks/baseline.txt)")
		benchJSON    = fs.String("bench-json", "", "machine-readable benchmark summary from scripts/bench.sh (benchmarks/latest.json); adds allocation columns")
		outPath      = fs.String("out", "", "write the report to this file (default: stdout)")
		lenient      = fs.Bool("lenient", false, "skip undecodable store lines (counting them) instead of failing with the offending line number")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "report: "+format+"\n", a...)
		return 2
	}
	stores := fs.Args()
	if len(stores) == 0 && *benchPath == "" {
		return fail("nothing to report: name at least one JSONL result store or -bench log")
	}

	sources := make([]report.Source, 0, len(stores))
	for _, path := range stores {
		src, err := report.ReadStoreFile(path, *lenient)
		if err != nil {
			return fail("%v", err)
		}
		sources = append(sources, src)
	}

	var bench *report.Bench
	if *benchPath != "" {
		latest, order, err := report.ParseBenchFile(*benchPath)
		if err != nil {
			return fail("%v", err)
		}
		bench = &report.Bench{
			Path: *benchPath, BaselinePath: *baselinePath,
			Latest: latest, Order: order,
		}
		if *baselinePath != "" {
			bench.Base, _, err = report.ParseBenchFile(*baselinePath)
			if err != nil {
				return fail("%v", err)
			}
		}
		if *benchJSON != "" {
			bench.Allocs, err = report.ParseBenchJSONFile(*benchJSON)
			if err != nil {
				return fail("%v", err)
			}
		}
	}

	out := report.Render(sources, bench)
	if *outPath == "" {
		if _, err := stdout.Write(out); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "report: wrote %s (%d bytes)\n", *outPath, len(out))
	return 0
}
