// Command sweep produces latency-versus-offered-traffic series — the raw
// data behind the paper's Figures 5, 6, 8 and 9 — for one or more named
// configurations, as aligned text columns suitable for plotting.
//
// Usage:
//
//	sweep -configs FR6,FR13,VC8,VC16 -wiring fast -pktlen 5
//	sweep -configs FR6,VC32 -pktlen 21 -from 0.1 -to 0.9 -step 0.05
//
// With -faults it instead sweeps data-flit loss rates on the FR6 network,
// comparing detection-only against the end-to-end retry layer:
//
//	sweep -faults -retrylimit 8 -packets 400
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"frfc"
)

func main() {
	var (
		configs = flag.String("configs", "FR6,VC8", "comma-separated configs: FR6, FR13, VC8, VC16, VC32, FR6-leadN")
		wiring  = flag.String("wiring", "fast", "fast or leading")
		pktLen  = flag.Int("pktlen", 5, "packet length in data flits")
		from    = flag.Float64("from", 0.10, "first offered load (fraction of capacity)")
		to      = flag.Float64("to", 0.90, "last offered load")
		step    = flag.Float64("step", 0.10, "load step")
		sample  = flag.Int("sample", 5000, "packets sampled per point")
		warmup  = flag.Int("warmup", 3000, "minimum warm-up cycles")
		seed    = flag.Uint64("seed", 0, "random seed (0 = default)")
		csv     = flag.Bool("csv", false, "emit comma-separated values (load%, then avg latency per config; empty cell = saturated)")

		faults     = flag.Bool("faults", false, "sweep data-flit loss rates on FR6 instead of offered loads, comparing detection-only vs end-to-end retry")
		retryLimit = flag.Int("retrylimit", 8, "retry budget of the -faults retry arm")
		packets    = flag.Int("packets", 400, "packets offered per -faults row")
		rates      = flag.String("rates", "", "comma-separated loss rates for -faults (default 0,0.01,0.02,0.05,0.10,0.20)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile after the sweep to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(2)
			}
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(2)
			}
			f.Close()
		}()
	}

	if *faults {
		runFaultSweep(*retryLimit, *packets, *pktLen, *rates, *seed, *csv)
		return
	}

	w := frfc.FastControl
	if *wiring == "leading" {
		w = frfc.LeadingControl
	} else if *wiring != "fast" {
		fmt.Fprintf(os.Stderr, "sweep: unknown wiring %q\n", *wiring)
		os.Exit(2)
	}

	var loads []float64
	for l := *from; l <= *to+1e-9; l += *step {
		loads = append(loads, l)
	}

	names := strings.Split(*configs, ",")
	series := make(map[string][]frfc.Result, len(names))
	for _, name := range names {
		spec, err := specFor(strings.TrimSpace(name), w, *pktLen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		spec = spec.WithSampling(*sample, *warmup)
		if *seed != 0 {
			spec = spec.WithSeed(*seed)
		}
		series[name] = frfc.Sweep(spec, loads)
	}

	if *csv {
		fmt.Printf("load")
		for _, name := range names {
			fmt.Printf(",%s", name)
		}
		fmt.Println()
		for i, l := range loads {
			fmt.Printf("%.1f", l*100)
			for _, name := range names {
				r := series[name][i]
				if r.Saturated {
					fmt.Printf(",")
				} else {
					fmt.Printf(",%.2f", r.AvgLatency)
				}
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("# latency (cycles) vs offered traffic (%% capacity); %s wiring, %d-flit packets\n", *wiring, *pktLen)
	fmt.Printf("%-8s", "load%")
	for _, name := range names {
		fmt.Printf(" %14s", name)
	}
	fmt.Println()
	for i, l := range loads {
		fmt.Printf("%-8.1f", l*100)
		for _, name := range names {
			r := series[name][i]
			if r.Saturated {
				fmt.Printf(" %14s", "saturated")
			} else {
				fmt.Printf(" %14.2f", r.AvgLatency)
			}
		}
		fmt.Println()
	}
}

// runFaultSweep is the -faults mode: delivery probability versus loss rate,
// detection-only versus end-to-end retry.
func runFaultSweep(retryLimit, packets, pktLen int, rates string, seed uint64, csv bool) {
	o := frfc.FaultSweepOptions{RetryLimit: retryLimit, Packets: packets, PacketLen: pktLen, Seed: seed}
	if rates != "" {
		for _, s := range strings.Split(rates, ",") {
			var r float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &r); err != nil || r != r || r < 0 || r > 1 {
				fmt.Fprintf(os.Stderr, "sweep: bad loss rate %q (want a probability in [0,1])\n", s)
				os.Exit(2)
			}
			o.Rates = append(o.Rates, r)
		}
	}
	points := frfc.FaultSweep(o)
	if csv {
		fmt.Println("loss,retrylimit,offered,delivered,abandoned,retried,avglatency")
		for _, p := range points {
			fmt.Printf("%.3f,%d,%d,%d,%d,%d,%.2f\n",
				p.DataFaultRate, p.RetryLimit, p.Offered, p.Delivered, p.Abandoned, p.Retried, p.AvgLatency)
		}
		return
	}
	fmt.Printf("# end-to-end delivery vs data-flit loss; FR6, %d-flit packets, %d packets per row\n", pktLen, packets)
	for _, p := range points {
		wedged := ""
		if p.Wedged {
			wedged = "  WEDGED"
		}
		fmt.Printf("%s%s\n", p, wedged)
	}
}

func specFor(name string, w frfc.Wiring, pktLen int) (frfc.Spec, error) {
	if lead, ok := strings.CutPrefix(name, "FR6-lead"); ok {
		var n int
		if _, err := fmt.Sscanf(lead, "%d", &n); err != nil {
			return frfc.Spec{}, fmt.Errorf("bad lead suffix in %q", name)
		}
		return frfc.FRLead(n, pktLen), nil
	}
	switch name {
	case "FR6":
		if w == frfc.LeadingControl {
			return frfc.FRLead(1, pktLen), nil
		}
		return frfc.FR6(w, pktLen), nil
	case "FR13":
		return frfc.FR13(w, pktLen), nil
	case "VC8":
		return frfc.VC8(w, pktLen), nil
	case "VC16":
		return frfc.VC16(w, pktLen), nil
	case "VC32":
		return frfc.VC32(w, pktLen), nil
	case "WH":
		return frfc.WormholeSpec(w, 8, pktLen), nil
	case "SAF":
		return frfc.StoreAndForwardSpec(w, 2, pktLen), nil
	case "VCT":
		return frfc.CutThroughSpec(w, 2, pktLen), nil
	default:
		return frfc.Spec{}, fmt.Errorf("unknown config %q (FR6, FR13, VC8, VC16, VC32, WH, SAF, VCT, FR6-leadN)", name)
	}
}
