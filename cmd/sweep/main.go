// Command sweep produces latency-versus-offered-traffic series — the raw
// data behind the paper's Figures 5, 6, 8 and 9 — for one or more named
// configurations, as aligned text columns suitable for plotting.
//
// Points execute concurrently on a worker pool (-workers, default NumCPU);
// any worker count produces byte-identical tables because every point owns
// its own network and RNG. With -out the results stream to an append-only
// JSONL store keyed by each point's content hash, and -resume reloads that
// store first so an interrupted campaign re-runs only what is missing —
// re-invoking an identical, completed sweep executes zero new simulations.
// -timeout bounds each point; a point that trips it (or panics) is reported
// failed without disturbing the rest. -progress streams jobs-done/total and
// an ETA to stderr.
//
// Usage:
//
//	sweep -configs FR6,FR13,VC8,VC16 -wiring fast -pktlen 5
//	sweep -configs FR6,VC32 -pktlen 21 -from 0.1 -to 0.9 -step 0.05
//	sweep -configs FR6,VC8 -workers 8 -out results.jsonl -progress
//	sweep -configs FR6,VC8 -out results.jsonl -resume   # finish a killed run
//	sweep -configs FR6,VC8 -profile profile.json        # self-profiling campaign summary
//	sweep -configs FR6,VC8 -waterfall waterfall.json    # per-stage latency provenance
//
// With -adaptive it skips the fixed load grid and bisects each
// configuration's saturation throughput in O(log 1/resolution) runs,
// reporting one row per configuration (-step doubles as the bisection
// resolution):
//
//	sweep -configs FR6,FR13,VC8 -adaptive -step 0.02
//
// With -faults it instead sweeps data-flit loss rates on the FR6 network,
// comparing detection-only against the end-to-end retry layer (cells also
// fan out over -workers):
//
//	sweep -faults -retrylimit 8 -packets 400
//
// With -reliability it sweeps hard-fault scenarios — scheduled link and
// router outages under fault-aware table routing — and reports graceful
// degradation: delivered fraction, fast-failed unreachable packets, and how
// completely latency recovers after a repair. -scenario substitutes a custom
// schedule for the default set:
//
//	sweep -reliability -retrylimit 8 -check
//	sweep -scenario "down 5-6 @400; up 5-6 @900" -retrylimit 8
//
// With -integrity it sweeps link bit-error rates on the FR6 network and
// reports silent-corruption tolerance: each rate runs once with the
// end-to-end payload check on and once with it off, alongside the full
// corruption ledger (flits corrupted, hop-CRC catches, escapes, phantom
// reservations, reclaimed slots):
//
//	sweep -integrity -check
//	sweep -integrity -bers 0,1e-3,1e-2 -crc-bits 8 -retrylimit 8
//
// With -chaos it runs one deterministic chaos campaign per intensity —
// composed soft loss, bit errors, link flaps, corruption spikes and (at
// intensity >= 0.75) router kills, all expanded from -chaos-seed — and
// reports how much traffic survived:
//
//	sweep -chaos -check
//	sweep -chaos -intensities 0.25,0.5,1 -chaos-seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"frfc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive the
// whole command and compare output bytes across worker counts.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configs = fs.String("configs", "FR6,VC8", "comma-separated configs: FR6, FR13, VC8, VC16, VC32, WH, SAF, VCT, FR6-leadN")
		wiring  = fs.String("wiring", "fast", "fast or leading")
		pktLen  = fs.Int("pktlen", 5, "packet length in data flits")
		from    = fs.Float64("from", 0.10, "first offered load (fraction of capacity)")
		to      = fs.Float64("to", 0.90, "last offered load")
		step    = fs.Float64("step", 0.10, "load step (with -adaptive: bisection resolution)")
		sample  = fs.Int("sample", 5000, "packets sampled per point")
		warmup  = fs.Int("warmup", 3000, "minimum warm-up cycles")
		seed    = fs.Uint64("seed", 0, "random seed (0 = default)")
		csv     = fs.Bool("csv", false, "emit comma-separated values (load%, then avg latency per config; empty cell = saturated)")

		workers    = fs.Int("workers", 0, "worker pool size (0 = NumCPU); results are identical for any value")
		out        = fs.String("out", "", "append results to this JSONL store as points complete")
		profileOut = fs.String("profile", "", "arm self-profiling on every point and write the campaign activity summary (per-point and aggregate idle fractions, phase attribution) as JSON to this file; grid sweeps only")
		wfOut      = fs.String("waterfall", "", "arm latency provenance on every point and write the campaign stage waterfall (per-point and aggregate queue/reserve/arb/stall/sched/link/drain cycle totals) as JSON to this file, with per-config breakdowns on stdout; grid sweeps only")
		resume     = fs.Bool("resume", false, "reload -out first and skip already-computed points (default: truncate it)")
		timeout    = fs.Duration("timeout", 0, "per-point wall-clock budget (0 = none); a point over budget fails alone")
		adaptive   = fs.Bool("adaptive", false, "bisect each config's saturation throughput instead of sweeping the load grid")
		progress   = fs.Bool("progress", false, "stream progress (done/total, ETA) to stderr")
		statusAddr = fs.String("status-addr", "", "serve live campaign status over HTTP on this host:port (/status JSON snapshot, /metrics Prometheus exposition); results stay byte-identical")

		faults     = fs.Bool("faults", false, "sweep data-flit loss rates on FR6 instead of offered loads, comparing detection-only vs end-to-end retry")
		retryLimit = fs.Int("retrylimit", 8, "retry budget of the -faults retry arm and of -reliability rows")
		packets    = fs.Int("packets", 0, "packets offered per -faults, -reliability, -integrity or -chaos row (0 = mode default: 400 for -faults/-integrity, 600 for -reliability/-chaos)")
		rates      = fs.String("rates", "", "comma-separated loss rates for -faults (default 0,0.01,0.02,0.05,0.10,0.20)")

		integrity = fs.Bool("integrity", false, "sweep link bit-error rates on FR6, comparing the end-to-end payload check on vs off")
		bers      = fs.String("bers", "", "comma-separated bit-error rates for -integrity (default 0,1e-4,1e-3,5e-3,1e-2)")
		crcBits   = fs.Int("crc-bits", 0, "modeled hop CRC width in bits for -integrity (0 = default 4; negative disables hop detection)")

		chaos       = fs.Bool("chaos", false, "run one deterministic chaos campaign per intensity on FR6 and report surviving traffic")
		intensities = fs.String("intensities", "", "comma-separated chaos intensities in (0,1] for -chaos (default 0.25,0.5,1)")
		chaosSeed   = fs.Uint64("chaos-seed", 0, "chaos plan seed for -chaos (0 = default); the campaign is a pure function of it")
		noE2E       = fs.Bool("no-e2e", false, "disable the end-to-end payload check in -chaos rows, so escaped corruption is silently accepted")

		reliability = fs.Bool("reliability", false, "sweep hard-fault scenarios on FR6 (healthy, link-down, link-flap, router-down) and report graceful degradation")
		scenario    = fs.String("scenario", "", `custom hard-fault schedule for the reliability sweep, e.g. "down 5-6 @400; up 5-6 @900" (implies -reliability)`)
		routing     = fs.String("routing", "", "routing algorithm for FR configs: xy (default), yx, or table (fault-aware lookup tables)")
		check       = fs.Bool("check", false, "run FR points under the per-cycle invariant checker")

		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile after the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "sweep: "+format+"\n", a...)
		return 2
	}
	if !*faults && !*reliability && !*integrity && !*chaos && *scenario == "" {
		// Flag validation: a non-positive -step would loop the load
		// grid forever, and the measurement protocol needs a positive
		// load window and sample.
		if *step <= 0 {
			return fail("-step must be > 0 (got %g)", *step)
		}
		if *from <= 0 {
			return fail("-from must be > 0 (got %g)", *from)
		}
		if !*adaptive && *from > *to {
			return fail("-from (%g) must not exceed -to (%g)", *from, *to)
		}
		if *sample <= 0 {
			return fail("-sample must be > 0 (got %d)", *sample)
		}
		if *warmup <= 0 {
			return fail("-warmup must be > 0 (got %d)", *warmup)
		}
	}
	if *workers < 0 {
		return fail("-workers must be >= 0 (got %d)", *workers)
	}
	if *resume && *out == "" {
		return fail("-resume needs -out to name the store to resume from")
	}
	if *profileOut != "" && (*adaptive || *faults || *reliability || *integrity || *chaos || *scenario != "") {
		return fail("-profile applies to grid sweeps only (not -adaptive or the fault/integrity/chaos modes)")
	}
	if *wfOut != "" && (*adaptive || *faults || *reliability || *integrity || *chaos || *scenario != "") {
		return fail("-waterfall applies to grid sweeps only (not -adaptive or the fault/integrity/chaos modes)")
	}
	if *out != "" && !*resume {
		// A fresh campaign: an existing store would otherwise silently
		// serve stale points.
		if err := os.Truncate(*out, 0); err != nil && !os.IsNotExist(err) {
			return fail("truncate %s: %v", *out, err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
			}
		}()
	}

	if *faults {
		return runFaultSweep(stdout, stderr, *retryLimit, *packets, *pktLen, *rates, *seed, *workers, *csv)
	}
	if *integrity {
		o := frfc.IntegritySweepOptions{
			RetryLimit: *retryLimit, Packets: *packets, PacketLen: *pktLen,
			CrcBits: *crcBits, Check: *check, Seed: *seed, Workers: *workers,
		}
		if *bers != "" {
			for _, s := range strings.Split(*bers, ",") {
				var b float64
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &b); err != nil || b != b || b < 0 || b >= 1 {
					return fail("bad bit-error rate %q (want a probability in [0,1))", s)
				}
				o.BERs = append(o.BERs, b)
			}
		}
		return runIntegritySweep(stdout, stderr, o, *csv)
	}
	if *chaos {
		o := frfc.ChaosSweepOptions{
			Packets: *packets, PacketLen: *pktLen, ChaosSeed: *chaosSeed,
			Seed: *seed, DisableE2E: *noE2E, Check: *check, Workers: *workers,
		}
		if *intensities != "" {
			for _, s := range strings.Split(*intensities, ",") {
				var in float64
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &in); err != nil || in != in || in <= 0 || in > 1 {
					return fail("bad chaos intensity %q (want a value in (0,1])", s)
				}
				o.Intensities = append(o.Intensities, in)
			}
		}
		return runChaosSweep(stdout, stderr, o, *csv)
	}
	if *reliability || *scenario != "" {
		o := frfc.ReliabilitySweepOptions{
			RetryLimit: *retryLimit, Packets: *packets, PacketLen: *pktLen,
			Routing: *routing, Check: *check, Seed: *seed, Workers: *workers,
		}
		if *scenario != "" {
			o.Scenarios = []frfc.ReliabilityScenario{{Name: "custom", Scenario: *scenario}}
		}
		return runReliabilitySweep(stdout, stderr, o, *csv)
	}

	w := frfc.FastControl
	if *wiring == "leading" {
		w = frfc.LeadingControl
	} else if *wiring != "fast" {
		return fail("unknown wiring %q", *wiring)
	}

	names := strings.Split(*configs, ",")
	specs := make([]frfc.Spec, 0, len(names))
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
		spec, err := specFor(names[i], w, *pktLen)
		if err != nil {
			return fail("%v", err)
		}
		spec = spec.WithSampling(*sample, *warmup)
		if *seed != 0 {
			spec = spec.WithSeed(*seed)
		}
		if *routing != "" {
			spec = spec.WithRouting(*routing)
		}
		if *check {
			spec = spec.WithCheck(true)
		}
		specs = append(specs, spec)
	}

	popts := frfc.ParallelOptions{
		Workers:    *workers,
		Timeout:    *timeout,
		ResultPath: *out,
		Profile:    *profileOut != "",
		Waterfall:  *wfOut != "",
	}
	if *progress {
		popts.Progress = func(p frfc.Progress) { fmt.Fprintf(stderr, "sweep: %s\n", p) }
	}
	if *statusAddr != "" {
		st, bound, err := frfc.ServeStatus(*statusAddr)
		if err != nil {
			return fail("status server: %v", err)
		}
		defer st.Close()
		fmt.Fprintf(stderr, "sweep: status on http://%s/status, metrics on http://%s/metrics\n", bound, bound)
		popts.Status = st
	}

	if *adaptive {
		return runAdaptive(stdout, stderr, names, specs, *step, *wiring, *pktLen, popts, *csv)
	}

	var loads []float64
	for l := *from; l <= *to+1e-9; l += *step {
		loads = append(loads, l)
	}

	jobs := make([]frfc.Job, 0, len(specs)*len(loads))
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, frfc.Job{Spec: s, Load: l})
		}
	}
	results, err := frfc.RunJobs(context.Background(), jobs, popts)
	if err != nil {
		return fail("%v", err)
	}
	series := make(map[string][]frfc.JobResult, len(names))
	for i, name := range names {
		series[name] = results[i*len(loads) : (i+1)*len(loads)]
	}

	exit := summarize(stderr, results)

	if *profileOut != "" {
		if err := writeCampaignProfile(*profileOut, results); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stderr, "sweep: campaign profile written to %s\n", *profileOut)
	}

	if *wfOut != "" {
		if err := writeCampaignWaterfall(*wfOut, results); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stderr, "sweep: campaign waterfall written to %s\n", *wfOut)
		if !*csv {
			printWaterfallBreakdown(stdout, names, series)
		}
	}

	if *csv {
		fmt.Fprintf(stdout, "load")
		for _, name := range names {
			fmt.Fprintf(stdout, ",%s", name)
		}
		fmt.Fprintln(stdout)
		for i, l := range loads {
			fmt.Fprintf(stdout, "%.1f", l*100)
			for _, name := range names {
				jr := series[name][i]
				if jr.Err != "" || jr.Result.Saturated {
					fmt.Fprintf(stdout, ",")
				} else {
					fmt.Fprintf(stdout, ",%.2f", jr.Result.AvgLatency)
				}
			}
			fmt.Fprintln(stdout)
		}
		return exit
	}

	fmt.Fprintf(stdout, "# latency (cycles) vs offered traffic (%% capacity); %s wiring, %d-flit packets\n", *wiring, *pktLen)
	fmt.Fprintf(stdout, "%-8s", "load%")
	for _, name := range names {
		fmt.Fprintf(stdout, " %14s", name)
	}
	fmt.Fprintln(stdout)
	for i, l := range loads {
		fmt.Fprintf(stdout, "%-8.1f", l*100)
		for _, name := range names {
			jr := series[name][i]
			switch {
			case jr.Err != "":
				fmt.Fprintf(stdout, " %14s", "failed")
			case jr.Result.Saturated:
				fmt.Fprintf(stdout, " %14s", "saturated")
			default:
				fmt.Fprintf(stdout, " %14.2f", jr.Result.AvgLatency)
			}
		}
		fmt.Fprintln(stdout)
	}
	return exit
}

// profilePoint is one point's row in the -profile campaign summary.
type profilePoint struct {
	Spec         string  `json:"spec"`
	Load         float64 `json:"load"`
	Ticks        int64   `json:"ticks"`
	ActiveTicks  int64   `json:"activeTicks"`
	IdleFraction float64 `json:"idleFraction"`
	SchedWork    int64   `json:"schedWork"`
	ArbWork      int64   `json:"arbWork"`
	SwitchWork   int64   `json:"switchWork"`
	CreditWork   int64   `json:"creditWork"`
}

// campaignProfile is the -profile output: the aggregate activity accounting
// over every simulated point, plus one row per point in job order. Every value
// comes from the deterministic Prof* result fields, so the file is
// byte-identical for any worker count.
type campaignProfile struct {
	Points       int            `json:"points"`
	Simulated    int            `json:"simulated"`
	Ticks        int64          `json:"ticks"`
	ActiveTicks  int64          `json:"activeTicks"`
	IdleFraction float64        `json:"idleFraction"`
	SchedWork    int64          `json:"schedWork"`
	ArbWork      int64          `json:"arbWork"`
	SwitchWork   int64          `json:"switchWork"`
	CreditWork   int64          `json:"creditWork"`
	PerPoint     []profilePoint `json:"perPoint"`
}

func writeCampaignProfile(path string, results []frfc.JobResult) error {
	cp := campaignProfile{Points: len(results)}
	for _, jr := range results {
		if jr.Err != "" {
			continue
		}
		r := jr.Result
		if r.ProfTicks == 0 {
			// Cached points predate profiling (or were skipped); they
			// carry no activity accounting.
			continue
		}
		cp.Simulated++
		cp.Ticks += r.ProfTicks
		cp.ActiveTicks += r.ProfActiveTicks
		cp.SchedWork += r.ProfSchedWork
		cp.ArbWork += r.ProfArbWork
		cp.SwitchWork += r.ProfSwitchWork
		cp.CreditWork += r.ProfCreditWork
		cp.PerPoint = append(cp.PerPoint, profilePoint{
			Spec: jr.Job.Spec.Name(), Load: jr.Job.Load,
			Ticks: r.ProfTicks, ActiveTicks: r.ProfActiveTicks,
			IdleFraction: r.ProfIdleFraction,
			SchedWork:    r.ProfSchedWork, ArbWork: r.ProfArbWork,
			SwitchWork: r.ProfSwitchWork, CreditWork: r.ProfCreditWork,
		})
	}
	if cp.Ticks > 0 {
		cp.IdleFraction = 1 - float64(cp.ActiveTicks)/float64(cp.Ticks)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cp); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// waterfallPoint is one point's row in the -waterfall campaign summary.
type waterfallPoint struct {
	Spec    string  `json:"spec"`
	Load    float64 `json:"load"`
	Packets int64   `json:"packets"`
	Total   int64   `json:"total"`
	Queue   int64   `json:"queue"`
	Reserve int64   `json:"reserve"`
	Arb     int64   `json:"arb"`
	Stall   int64   `json:"stall"`
	Sched   int64   `json:"sched"`
	Link    int64   `json:"link"`
	Drain   int64   `json:"drain"`
}

// campaignWaterfall is the -waterfall output: the aggregate stage totals over
// every simulated point, plus one row per point in job order. Every value
// comes from the deterministic Waterfall* result fields, so the file is
// byte-identical for any worker count.
type campaignWaterfall struct {
	Points    int              `json:"points"`
	Simulated int              `json:"simulated"`
	Packets   int64            `json:"packets"`
	Total     int64            `json:"total"`
	Queue     int64            `json:"queue"`
	Reserve   int64            `json:"reserve"`
	Arb       int64            `json:"arb"`
	Stall     int64            `json:"stall"`
	Sched     int64            `json:"sched"`
	Link      int64            `json:"link"`
	Drain     int64            `json:"drain"`
	PerPoint  []waterfallPoint `json:"perPoint"`
}

func writeCampaignWaterfall(path string, results []frfc.JobResult) error {
	cw := campaignWaterfall{Points: len(results)}
	for _, jr := range results {
		if jr.Err != "" {
			continue
		}
		r := jr.Result
		if r.WaterfallPackets == 0 {
			// Cached points predate latency provenance (or saturated with
			// nothing delivered); they carry no decomposition.
			continue
		}
		cw.Simulated++
		cw.Packets += r.WaterfallPackets
		cw.Total += r.WaterfallTotal
		cw.Queue += r.WaterfallQueue
		cw.Reserve += r.WaterfallReserve
		cw.Arb += r.WaterfallArb
		cw.Stall += r.WaterfallStall
		cw.Sched += r.WaterfallSched
		cw.Link += r.WaterfallLink
		cw.Drain += r.WaterfallDrain
		cw.PerPoint = append(cw.PerPoint, waterfallPoint{
			Spec: jr.Job.Spec.Name(), Load: jr.Job.Load,
			Packets: r.WaterfallPackets, Total: r.WaterfallTotal,
			Queue: r.WaterfallQueue, Reserve: r.WaterfallReserve,
			Arb: r.WaterfallArb, Stall: r.WaterfallStall,
			Sched: r.WaterfallSched, Link: r.WaterfallLink,
			Drain: r.WaterfallDrain,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cw); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printWaterfallBreakdown renders one "where the cycles go" comment line per
// configuration: mean cycles per stage over every decomposed point of that
// config's series.
func printWaterfallBreakdown(stdout io.Writer, names []string, series map[string][]frfc.JobResult) {
	fmt.Fprintln(stdout, "# latency waterfall: mean cycles per stage (queue + reserve + arb + stall + sched + link + drain)")
	for _, name := range names {
		var pkts, q, re, a, st, sc, li, dr int64
		for _, jr := range series[name] {
			if jr.Err != "" || jr.Result.WaterfallPackets == 0 {
				continue
			}
			r := jr.Result
			pkts += r.WaterfallPackets
			q += r.WaterfallQueue
			re += r.WaterfallReserve
			a += r.WaterfallArb
			st += r.WaterfallStall
			sc += r.WaterfallSched
			li += r.WaterfallLink
			dr += r.WaterfallDrain
		}
		if pkts == 0 {
			fmt.Fprintf(stdout, "# waterfall %-10s no decomposed packets\n", name)
			continue
		}
		n := float64(pkts)
		fmt.Fprintf(stdout, "# waterfall %-10s %.2f + %.2f + %.2f + %.2f + %.2f + %.2f + %.2f = %.2f cycles over %d packets\n",
			name, float64(q)/n, float64(re)/n, float64(a)/n, float64(st)/n,
			float64(sc)/n, float64(li)/n, float64(dr)/n,
			float64(q+re+a+st+sc+li+dr)/n, pkts)
	}
}

// summarize prints the campaign accounting line to stderr — the signal a
// resumed sweep ran zero new simulations — and reports failures.
func summarize(stderr io.Writer, results []frfc.JobResult) int {
	simulated, cached, failed := 0, 0, 0
	for _, jr := range results {
		switch {
		case jr.Err != "":
			failed++
		case jr.Cached:
			cached++
		default:
			simulated++
		}
	}
	fmt.Fprintf(stderr, "sweep: %d points: %d simulated, %d cached, %d failed\n",
		len(results), simulated, cached, failed)
	if failed > 0 {
		for _, jr := range results {
			if jr.Err != "" {
				first, _, _ := strings.Cut(jr.Err, "\n")
				fmt.Fprintf(stderr, "sweep: point %s load=%.1f%% failed: %s\n",
					jr.Job.Spec.Name(), jr.Job.Load*100, first)
			}
		}
		return 1
	}
	return 0
}

// runAdaptive is the -adaptive mode: one bisection search per configuration
// instead of the fixed load grid.
func runAdaptive(stdout, stderr io.Writer, names []string, specs []frfc.Spec, resolution float64, wiring string, pktLen int, popts frfc.ParallelOptions, csv bool) int {
	pts, err := frfc.SaturationSearch(context.Background(), specs, resolution, popts)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	exit := 0
	simulated := 0
	for _, p := range pts {
		simulated += p.Simulated
		if p.Err != "" {
			first, _, _ := strings.Cut(p.Err, "\n")
			fmt.Fprintf(stderr, "sweep: %s search failed: %s\n", p.Spec, first)
			exit = 1
		}
	}
	fmt.Fprintf(stderr, "sweep: %d configs: %d runs simulated\n", len(pts), simulated)

	if csv {
		fmt.Fprintln(stdout, "config,saturation,effective,base_latency,evals,simulated")
		for i, p := range pts {
			if p.Err != "" {
				fmt.Fprintf(stdout, "%s,,,,,\n", names[i])
				continue
			}
			fmt.Fprintf(stdout, "%s,%.1f,%.1f,%.2f,%d,%d\n",
				names[i], p.Saturation*100, p.Effective*100, p.BaseLatency, p.Evals, p.Simulated)
		}
		return exit
	}
	fmt.Fprintf(stdout, "# saturation throughput by bisection (resolution %.1f%% capacity); %s wiring, %d-flit packets\n",
		resolution*100, wiring, pktLen)
	fmt.Fprintf(stdout, "%-14s %10s %10s %12s %6s %10s\n",
		"config", "sat%cap", "eff%cap", "base(cyc)", "evals", "simulated")
	for i, p := range pts {
		if p.Err != "" {
			fmt.Fprintf(stdout, "%-14s %10s\n", names[i], "failed")
			continue
		}
		fmt.Fprintf(stdout, "%-14s %10.1f %10.1f %12.2f %6d %10d\n",
			names[i], p.Saturation*100, p.Effective*100, p.BaseLatency, p.Evals, p.Simulated)
	}
	return exit
}

// runFaultSweep is the -faults mode: delivery probability versus loss rate,
// detection-only versus end-to-end retry, cells fanned over the worker pool.
func runFaultSweep(stdout, stderr io.Writer, retryLimit, packets, pktLen int, rates string, seed uint64, workers int, csv bool) int {
	o := frfc.FaultSweepOptions{RetryLimit: retryLimit, Packets: packets, PacketLen: pktLen, Seed: seed, Workers: workers}
	if rates != "" {
		for _, s := range strings.Split(rates, ",") {
			var r float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &r); err != nil || r != r || r < 0 || r > 1 {
				fmt.Fprintf(stderr, "sweep: bad loss rate %q (want a probability in [0,1])\n", s)
				return 2
			}
			o.Rates = append(o.Rates, r)
		}
	}
	points := frfc.FaultSweep(o)
	if csv {
		fmt.Fprintln(stdout, "loss,retrylimit,offered,delivered,abandoned,retried,avglatency")
		for _, p := range points {
			fmt.Fprintf(stdout, "%.3f,%d,%d,%d,%d,%d,%.2f\n",
				p.DataFaultRate, p.RetryLimit, p.Offered, p.Delivered, p.Abandoned, p.Retried, p.AvgLatency)
		}
		return 0
	}
	fmt.Fprintf(stdout, "# end-to-end delivery vs data-flit loss; FR6, %d-flit packets, %d packets per row\n", pktLen, points[0].Offered)
	for _, p := range points {
		wedged := ""
		if p.Wedged {
			wedged = "  WEDGED"
		}
		fmt.Fprintf(stdout, "%s%s\n", p, wedged)
	}
	return 0
}

// runReliabilitySweep is the -reliability / -scenario mode: graceful
// degradation under scheduled hard faults, rows fanned over the worker pool.
func runReliabilitySweep(stdout, stderr io.Writer, o frfc.ReliabilitySweepOptions, csv bool) int {
	points, err := frfc.ReliabilitySweep(o)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	exit := 0
	for _, p := range points {
		if p.Wedged {
			fmt.Fprintf(stderr, "sweep: scenario %s wedged (no-progress watchdog fired)\n", p.Scenario)
			exit = 1
		}
	}
	if csv {
		fmt.Fprintln(stdout, "scenario,retrylimit,offered,delivered,unreachable,abandoned,dropped,retried,avglatency,prefault,outage,postrecovery,recovery")
		for _, p := range points {
			fmt.Fprintf(stdout, "%s,%d,%d,%d,%d,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%.3f\n",
				p.Scenario, p.RetryLimit, p.Offered, p.Delivered, p.Unreachable, p.Abandoned,
				p.DroppedFlits, p.Retried, p.AvgLatency,
				p.PreFaultLatency, p.OutageLatency, p.PostRecoveryLatency, p.LatencyRecovery)
		}
		return exit
	}
	fmt.Fprintf(stdout, "# graceful degradation under hard faults; FR6, table routing, retry<=%d, %d packets per row\n",
		points[0].RetryLimit, points[0].Offered)
	for _, p := range points {
		wedged := ""
		if p.Wedged {
			wedged = "  WEDGED"
		}
		fmt.Fprintf(stdout, "%s%s\n", p, wedged)
	}
	return exit
}

// runIntegritySweep is the -integrity mode: silent-corruption tolerance
// versus link bit-error rate, end-to-end check on versus off, cells fanned
// over the worker pool.
func runIntegritySweep(stdout, stderr io.Writer, o frfc.IntegritySweepOptions, csv bool) int {
	points, err := frfc.IntegritySweep(o)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	exit := 0
	for _, p := range points {
		if p.Wedged {
			fmt.Fprintf(stderr, "sweep: integrity cell ber=%g e2e=%v wedged (no-progress watchdog fired)\n", p.BER, p.E2ECheck)
			exit = 1
		}
	}
	if csv {
		fmt.Fprintln(stdout, "ber,crcbits,e2e,offered,delivered,abandoned,corrupted,crcdetected,escapes,phantom,reclaimed,retried,avglatency")
		for _, p := range points {
			fmt.Fprintf(stdout, "%g,%d,%v,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.2f\n",
				p.BER, p.CrcBits, p.E2ECheck, p.Offered, p.Delivered, p.Abandoned,
				p.Corrupted, p.CrcDetected, p.CorruptEscapes,
				p.PhantomReservations, p.ReclaimedSlots, p.Retried, p.AvgLatency)
		}
		return exit
	}
	fmt.Fprintf(stdout, "# silent-corruption tolerance vs link bit-error rate; FR6, %d-bit hop CRC, %d packets per row\n",
		points[0].CrcBits, points[0].Offered)
	for _, p := range points {
		wedged := ""
		if p.Wedged {
			wedged = "  WEDGED"
		}
		fmt.Fprintf(stdout, "%s%s\n", p, wedged)
	}
	return exit
}

// runChaosSweep is the -chaos mode: one deterministic chaos campaign per
// intensity, rows fanned over the worker pool.
func runChaosSweep(stdout, stderr io.Writer, o frfc.ChaosSweepOptions, csv bool) int {
	points, err := frfc.ChaosSweep(o)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	exit := 0
	for _, p := range points {
		if p.Wedged {
			fmt.Fprintf(stderr, "sweep: chaos campaign intensity=%g wedged (no-progress watchdog fired)\n", p.Intensity)
			exit = 1
		}
	}
	if csv {
		fmt.Fprintln(stdout, "intensity,seed,events,offered,delivered,abandoned,unreachable,dropped,corrupted,crcdetected,escapes,phantom,reclaimed,retried,avglatency")
		for _, p := range points {
			fmt.Fprintf(stdout, "%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.2f\n",
				p.Intensity, p.Seed, p.Events, p.Offered, p.Delivered, p.Abandoned,
				p.Unreachable, p.DroppedFlits, p.Corrupted, p.CrcDetected,
				p.CorruptEscapes, p.PhantomReservations, p.ReclaimedSlots,
				p.Retried, p.AvgLatency)
		}
		return exit
	}
	fmt.Fprintf(stdout, "# surviving traffic under deterministic chaos campaigns; FR6, seed %d, %d packets per row\n",
		points[0].Seed, points[0].Offered)
	for _, p := range points {
		wedged := ""
		if p.Wedged {
			wedged = "  WEDGED"
		}
		fmt.Fprintf(stdout, "%s%s\n", p, wedged)
	}
	return exit
}

func specFor(name string, w frfc.Wiring, pktLen int) (frfc.Spec, error) {
	if lead, ok := strings.CutPrefix(name, "FR6-lead"); ok {
		var n int
		if _, err := fmt.Sscanf(lead, "%d", &n); err != nil {
			return frfc.Spec{}, fmt.Errorf("bad lead suffix in %q", name)
		}
		return frfc.FRLead(n, pktLen), nil
	}
	switch name {
	case "FR6":
		if w == frfc.LeadingControl {
			return frfc.FRLead(1, pktLen), nil
		}
		return frfc.FR6(w, pktLen), nil
	case "FR13":
		return frfc.FR13(w, pktLen), nil
	case "VC8":
		return frfc.VC8(w, pktLen), nil
	case "VC16":
		return frfc.VC16(w, pktLen), nil
	case "VC32":
		return frfc.VC32(w, pktLen), nil
	case "WH":
		return frfc.WormholeSpec(w, 8, pktLen), nil
	case "SAF":
		return frfc.StoreAndForwardSpec(w, 2, pktLen), nil
	case "VCT":
		return frfc.CutThroughSpec(w, 2, pktLen), nil
	case "CS":
		return frfc.CircuitSpec(w, pktLen), nil
	default:
		return frfc.Spec{}, fmt.Errorf("unknown config %q (FR6, FR13, VC8, VC16, VC32, WH, SAF, VCT, CS, FR6-leadN)", name)
	}
}
