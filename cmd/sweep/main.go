// Command sweep produces latency-versus-offered-traffic series — the raw
// data behind the paper's Figures 5, 6, 8 and 9 — for one or more named
// configurations, as aligned text columns suitable for plotting.
//
// Usage:
//
//	sweep -configs FR6,FR13,VC8,VC16 -wiring fast -pktlen 5
//	sweep -configs FR6,VC32 -pktlen 21 -from 0.1 -to 0.9 -step 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"frfc"
)

func main() {
	var (
		configs = flag.String("configs", "FR6,VC8", "comma-separated configs: FR6, FR13, VC8, VC16, VC32, FR6-leadN")
		wiring  = flag.String("wiring", "fast", "fast or leading")
		pktLen  = flag.Int("pktlen", 5, "packet length in data flits")
		from    = flag.Float64("from", 0.10, "first offered load (fraction of capacity)")
		to      = flag.Float64("to", 0.90, "last offered load")
		step    = flag.Float64("step", 0.10, "load step")
		sample  = flag.Int("sample", 5000, "packets sampled per point")
		warmup  = flag.Int("warmup", 3000, "minimum warm-up cycles")
		seed    = flag.Uint64("seed", 0, "random seed (0 = default)")
		csv     = flag.Bool("csv", false, "emit comma-separated values (load%, then avg latency per config; empty cell = saturated)")
	)
	flag.Parse()

	w := frfc.FastControl
	if *wiring == "leading" {
		w = frfc.LeadingControl
	} else if *wiring != "fast" {
		fmt.Fprintf(os.Stderr, "sweep: unknown wiring %q\n", *wiring)
		os.Exit(2)
	}

	var loads []float64
	for l := *from; l <= *to+1e-9; l += *step {
		loads = append(loads, l)
	}

	names := strings.Split(*configs, ",")
	series := make(map[string][]frfc.Result, len(names))
	for _, name := range names {
		spec, err := specFor(strings.TrimSpace(name), w, *pktLen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		spec = spec.WithSampling(*sample, *warmup)
		if *seed != 0 {
			spec = spec.WithSeed(*seed)
		}
		series[name] = frfc.Sweep(spec, loads)
	}

	if *csv {
		fmt.Printf("load")
		for _, name := range names {
			fmt.Printf(",%s", name)
		}
		fmt.Println()
		for i, l := range loads {
			fmt.Printf("%.1f", l*100)
			for _, name := range names {
				r := series[name][i]
				if r.Saturated {
					fmt.Printf(",")
				} else {
					fmt.Printf(",%.2f", r.AvgLatency)
				}
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("# latency (cycles) vs offered traffic (%% capacity); %s wiring, %d-flit packets\n", *wiring, *pktLen)
	fmt.Printf("%-8s", "load%")
	for _, name := range names {
		fmt.Printf(" %14s", name)
	}
	fmt.Println()
	for i, l := range loads {
		fmt.Printf("%-8.1f", l*100)
		for _, name := range names {
			r := series[name][i]
			if r.Saturated {
				fmt.Printf(" %14s", "saturated")
			} else {
				fmt.Printf(" %14.2f", r.AvgLatency)
			}
		}
		fmt.Println()
	}
}

func specFor(name string, w frfc.Wiring, pktLen int) (frfc.Spec, error) {
	if lead, ok := strings.CutPrefix(name, "FR6-lead"); ok {
		var n int
		if _, err := fmt.Sscanf(lead, "%d", &n); err != nil {
			return frfc.Spec{}, fmt.Errorf("bad lead suffix in %q", name)
		}
		return frfc.FRLead(n, pktLen), nil
	}
	switch name {
	case "FR6":
		if w == frfc.LeadingControl {
			return frfc.FRLead(1, pktLen), nil
		}
		return frfc.FR6(w, pktLen), nil
	case "FR13":
		return frfc.FR13(w, pktLen), nil
	case "VC8":
		return frfc.VC8(w, pktLen), nil
	case "VC16":
		return frfc.VC16(w, pktLen), nil
	case "VC32":
		return frfc.VC32(w, pktLen), nil
	case "WH":
		return frfc.WormholeSpec(w, 8, pktLen), nil
	case "SAF":
		return frfc.StoreAndForwardSpec(w, 2, pktLen), nil
	case "VCT":
		return frfc.CutThroughSpec(w, 2, pktLen), nil
	default:
		return frfc.Spec{}, fmt.Errorf("unknown config %q (FR6, FR13, VC8, VC16, VC32, WH, SAF, VCT, FR6-leadN)", name)
	}
}
