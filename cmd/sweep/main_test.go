package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// sweepArgs is a small, fast grid shared by the tests.
func sweepArgs(extra ...string) []string {
	base := []string{
		"-configs", "FR6,VC8", "-from", "0.2", "-to", "0.4", "-step", "0.2",
		"-sample", "150", "-warmup", "300",
	}
	return append(base, extra...)
}

// TestWorkersByteIdenticalOutput is the acceptance criterion: the sweep's
// stdout must be byte-identical for -workers=1 and -workers=4, in both table
// and CSV form.
func TestWorkersByteIdenticalOutput(t *testing.T) {
	for _, mode := range [][]string{nil, {"-csv"}} {
		var ref []byte
		for _, workers := range []string{"1", "4"} {
			var stdout, stderr bytes.Buffer
			args := sweepArgs("-workers", workers)
			args = append(args, mode...)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("workers=%s exit %d: %s", workers, code, stderr.String())
			}
			if ref == nil {
				ref = stdout.Bytes()
				continue
			}
			if !bytes.Equal(stdout.Bytes(), ref) {
				t.Errorf("mode %v: -workers=4 output differs from -workers=1:\n--- workers=1\n%s--- workers=4\n%s",
					mode, ref, stdout.Bytes())
			}
		}
	}
}

// syncBuffer is a bytes.Buffer safe for one writer and one reader goroutine;
// the status test tails stderr while run() is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestStatusServerByteIdenticalOutput is the acceptance criterion: a sweep run
// with -status-addr must print byte-identical results to one without, and its
// /status and /metrics endpoints must answer while the campaign runs.
func TestStatusServerByteIdenticalOutput(t *testing.T) {
	args := sweepArgs("-workers", "1")

	var bare, bareErr bytes.Buffer
	if code := run(args, &bare, &bareErr); code != 0 {
		t.Fatalf("bare run exit %d: %s", code, bareErr.String())
	}

	var served bytes.Buffer
	stderr := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(append(append([]string(nil), args...), "-status-addr", "127.0.0.1:0"), &served, stderr)
	}()

	// The command announces the bound address on stderr before the campaign
	// starts; tail stderr until it appears.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		s := stderr.String()
		if i := strings.Index(s, "status on http://"); i >= 0 {
			rest := s[i+len("status on http://"):]
			if j := strings.Index(rest, "/status"); j >= 0 {
				addr = rest[:j]
			}
		}
		if addr == "" {
			if time.Now().After(deadline) {
				t.Fatalf("status address never announced; stderr: %s", stderr.String())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Scrape both endpoints while the campaign is in flight. If the campaign
	// outruns the scrape on a fast machine the listener is already closed;
	// the byte-identical check below still runs either way, and the
	// endpoints themselves are covered by the library tests.
	scraped := false
	finished := false
	for !scraped && !finished {
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("served run exit %d: %s", code, stderr.String())
			}
			finished = true
		default:
			resp, err := http.Get("http://" + addr + "/status")
			if err != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Fatal(rerr)
			}
			var snap map[string]any
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatalf("/status not JSON mid-campaign: %v\n%s", err, body)
			}
			mresp, merr := http.Get("http://" + addr + "/metrics")
			if merr == nil {
				mbody, _ := io.ReadAll(mresp.Body)
				mresp.Body.Close()
				if !strings.Contains(string(mbody), "frfc_up 1") {
					t.Fatalf("/metrics invalid mid-campaign:\n%s", mbody)
				}
			}
			scraped = true
		}
	}
	if !finished {
		if code := <-done; code != 0 {
			t.Fatalf("served run exit %d: %s", code, stderr.String())
		}
	}
	if !scraped {
		t.Logf("campaign finished before a scrape landed; skipped endpoint checks")
	}

	if !bytes.Equal(bare.Bytes(), served.Bytes()) {
		t.Errorf("-status-addr changed sweep output:\n--- bare\n%s--- served\n%s", bare.Bytes(), served.Bytes())
	}
}

// TestResumeExecutesZeroNewJobs is the acceptance criterion: re-invoking an
// identical completed sweep with -resume must simulate nothing and still
// print the identical table.
func TestResumeExecutesZeroNewJobs(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sweep.jsonl")
	var first, firstErr bytes.Buffer
	if code := run(sweepArgs("-workers", "2", "-out", store), &first, &firstErr); code != 0 {
		t.Fatalf("first run exit %d: %s", code, firstErr.String())
	}
	if !strings.Contains(firstErr.String(), "4 simulated, 0 cached") {
		t.Fatalf("first run accounting unexpected: %s", firstErr.String())
	}

	var second, secondErr bytes.Buffer
	if code := run(sweepArgs("-workers", "2", "-out", store, "-resume"), &second, &secondErr); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, secondErr.String())
	}
	if !strings.Contains(secondErr.String(), "0 simulated, 4 cached") {
		t.Fatalf("resumed run simulated new jobs: %s", secondErr.String())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- resumed\n%s", first.Bytes(), second.Bytes())
	}
}

// TestFreshRunTruncatesStore: without -resume an existing -out store must not
// serve stale points.
func TestFreshRunTruncatesStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sweep.jsonl")
	var out, errBuf bytes.Buffer
	if code := run(sweepArgs("-out", store), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	errBuf.Reset()
	if code := run(sweepArgs("-out", store), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "4 simulated, 0 cached") {
		t.Errorf("fresh run served cached points: %s", errBuf.String())
	}
}

// TestFlagValidation: bad measurement flags must fail fast with a clear
// message and exit code 2 — a non-positive -step used to loop forever.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero step", []string{"-step", "0"}, "-step must be > 0"},
		{"negative step", []string{"-step", "-0.1"}, "-step must be > 0"},
		{"from > to", []string{"-from", "0.8", "-to", "0.2"}, "must not exceed -to"},
		{"non-positive from", []string{"-from", "0"}, "-from must be > 0"},
		{"non-positive sample", []string{"-sample", "0"}, "-sample must be > 0"},
		{"non-positive warmup", []string{"-warmup", "-5"}, "-warmup must be > 0"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 0"},
		{"resume without out", []string{"-resume"}, "-resume needs -out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not explain %q", stderr.String(), tc.want)
			}
			if stdout.Len() != 0 {
				t.Errorf("rejected invocation still wrote output: %s", stdout.String())
			}
		})
	}
}

// TestAdaptiveMode: -adaptive prints one bisection row per config and resumes
// from the store with zero new simulations.
func TestAdaptiveMode(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sat.jsonl")
	args := []string{
		"-configs", "FR6", "-adaptive", "-step", "0.1",
		"-sample", "150", "-warmup", "300", "-workers", "2", "-out", store,
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	outStr := stdout.String()
	if !strings.Contains(outStr, "bisection") || !strings.Contains(outStr, "FR6") {
		t.Fatalf("adaptive table malformed:\n%s", outStr)
	}

	resumed := append(args, "-resume")
	var stdout2, stderr2 bytes.Buffer
	if code := run(resumed, &stdout2, &stderr2); code != 0 {
		t.Fatalf("resumed exit %d: %s", code, stderr2.String())
	}
	if !strings.Contains(stderr2.String(), "0 runs simulated") {
		t.Fatalf("resumed adaptive search re-simulated: %s", stderr2.String())
	}
}

// TestReliabilityModeByteIdentical: the hard-fault scenario sweep must emit
// byte-identical tables for any worker count — the fault schedule rides the
// job spec, so it replays identically wherever a row lands. Also covers the
// custom -scenario path and its parse-error exit.
func TestReliabilityModeByteIdentical(t *testing.T) {
	for _, mode := range [][]string{
		{"-reliability", "-packets", "150", "-check"},
		{"-scenario", "down 5-6 @300; up 5-6 @700", "-packets", "150", "-csv"},
	} {
		var ref []byte
		for _, workers := range []string{"1", "4"} {
			var stdout, stderr bytes.Buffer
			args := append([]string{"-workers", workers}, mode...)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("mode %v workers=%s exit %d: %s", mode, workers, code, stderr.String())
			}
			if ref == nil {
				ref = stdout.Bytes()
				continue
			}
			if !bytes.Equal(stdout.Bytes(), ref) {
				t.Errorf("mode %v: -workers=4 output differs from -workers=1:\n--- workers=1\n%s--- workers=4\n%s",
					mode, ref, stdout.Bytes())
			}
		}
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "explode 5 @100"}, &stdout, &stderr); code != 2 {
		t.Errorf("malformed scenario exited %d, want 2 (stderr: %s)", code, stderr.String())
	}
}

// TestIntegrityAndChaosModesByteIdentical: the bit-error and chaos sweeps
// must emit byte-identical tables for any worker count — every cell owns its
// own network and RNG, and the chaos plan is a pure function of its seed.
func TestIntegrityAndChaosModesByteIdentical(t *testing.T) {
	for _, mode := range [][]string{
		{"-integrity", "-packets", "80", "-bers", "0,5e-3", "-check"},
		{"-integrity", "-packets", "80", "-bers", "5e-3", "-crc-bits", "2", "-csv"},
		{"-chaos", "-packets", "120", "-intensities", "0.3,0.6", "-check"},
		{"-chaos", "-packets", "120", "-intensities", "0.5", "-chaos-seed", "7", "-no-e2e", "-csv"},
	} {
		var ref []byte
		for _, workers := range []string{"1", "4"} {
			var stdout, stderr bytes.Buffer
			args := append([]string{"-workers", workers}, mode...)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("mode %v workers=%s exit %d: %s", mode, workers, code, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Fatalf("mode %v produced no output", mode)
			}
			if ref == nil {
				ref = stdout.Bytes()
				continue
			}
			if !bytes.Equal(stdout.Bytes(), ref) {
				t.Errorf("mode %v: -workers=4 output differs from -workers=1:\n--- workers=1\n%s--- workers=4\n%s",
					mode, ref, stdout.Bytes())
			}
		}
	}
}

// TestProfileCampaignOutput: -profile arms self-profiling on every point and
// writes a campaign activity summary that is byte-identical for any worker
// count; the sweep table itself must also stay byte-identical to an
// unprofiled run.
func TestProfileCampaignOutput(t *testing.T) {
	dir := t.TempDir()

	var bare, bareErr bytes.Buffer
	if code := run(sweepArgs("-workers", "2"), &bare, &bareErr); code != 0 {
		t.Fatalf("bare exit %d: %s", code, bareErr.String())
	}

	var profiles [][]byte
	for _, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "profile-"+workers+".json")
		var stdout, stderr bytes.Buffer
		if code := run(sweepArgs("-workers", workers, "-profile", path), &stdout, &stderr); code != 0 {
			t.Fatalf("workers=%s exit %d: %s", workers, code, stderr.String())
		}
		if !bytes.Equal(stdout.Bytes(), bare.Bytes()) {
			t.Errorf("-profile changed the sweep table:\n--- bare\n%s--- profiled\n%s", bare.Bytes(), stdout.Bytes())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, raw)
	}
	if !bytes.Equal(profiles[0], profiles[1]) {
		t.Errorf("campaign profile differs across worker counts:\n--- 1w\n%s--- 4w\n%s", profiles[0], profiles[1])
	}

	var cp campaignProfile
	if err := json.Unmarshal(profiles[0], &cp); err != nil {
		t.Fatalf("campaign profile JSON: %v", err)
	}
	if cp.Points != 4 || cp.Simulated != 4 || len(cp.PerPoint) != 4 {
		t.Fatalf("campaign profile coverage wrong: %+v", cp)
	}
	if cp.Ticks == 0 || cp.IdleFraction <= 0 || cp.IdleFraction >= 1 {
		t.Fatalf("campaign aggregate empty: %+v", cp)
	}
	if cp.SchedWork == 0 || cp.SwitchWork == 0 {
		t.Fatalf("phase attribution missing (FR points present): %+v", cp)
	}

	// -profile applies to grid sweeps only.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-adaptive", "-profile", filepath.Join(dir, "x.json")}, &stdout, &stderr); code != 2 {
		t.Fatalf("-adaptive -profile exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "grid sweeps only") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestIntegrityChaosFlagValidation: malformed rates and intensities fail fast
// with exit code 2 and a message naming the offending value.
func TestIntegrityChaosFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"ber too high", []string{"-integrity", "-bers", "1.5"}, "bad bit-error rate"},
		{"ber negative", []string{"-integrity", "-bers", "-0.1"}, "bad bit-error rate"},
		{"ber garbage", []string{"-integrity", "-bers", "0,zebra"}, "bad bit-error rate"},
		{"intensity zero", []string{"-chaos", "-intensities", "0"}, "bad chaos intensity"},
		{"intensity too high", []string{"-chaos", "-intensities", "0.5,1.2"}, "bad chaos intensity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not explain %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestWaterfallCampaignOutput: -waterfall writes a worker-count-invariant
// campaign stage summary whose per-point partitions are exact, and prints one
// breakdown comment line per config without touching the sweep table.
func TestWaterfallCampaignOutput(t *testing.T) {
	dir := t.TempDir()

	var waterfalls [][]byte
	var outs [][]byte
	for _, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "waterfall-"+workers+".json")
		var stdout, stderr bytes.Buffer
		if code := run(sweepArgs("-workers", workers, "-waterfall", path), &stdout, &stderr); code != 0 {
			t.Fatalf("workers=%s exit %d: %s", workers, code, stderr.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		waterfalls = append(waterfalls, raw)
		outs = append(outs, stdout.Bytes())
	}
	if !bytes.Equal(waterfalls[0], waterfalls[1]) {
		t.Errorf("campaign waterfall differs across worker counts:\n--- 1w\n%s--- 4w\n%s", waterfalls[0], waterfalls[1])
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Errorf("stdout differs across worker counts:\n--- 1w\n%s--- 4w\n%s", outs[0], outs[1])
	}
	for _, name := range []string{"FR6", "VC8"} {
		if !strings.Contains(string(outs[0]), "# waterfall "+name) {
			t.Errorf("stdout missing breakdown line for %s:\n%s", name, outs[0])
		}
	}

	var cw campaignWaterfall
	if err := json.Unmarshal(waterfalls[0], &cw); err != nil {
		t.Fatalf("campaign waterfall JSON: %v", err)
	}
	if cw.Points != 4 || cw.Simulated != 4 || len(cw.PerPoint) != 4 {
		t.Fatalf("campaign waterfall coverage wrong: %+v", cw)
	}
	if sum := cw.Queue + cw.Reserve + cw.Arb + cw.Stall + cw.Sched + cw.Link + cw.Drain; sum != cw.Total || cw.Total == 0 {
		t.Fatalf("aggregate stage sum %d != total %d", sum, cw.Total)
	}
	for _, p := range cw.PerPoint {
		if sum := p.Queue + p.Reserve + p.Arb + p.Stall + p.Sched + p.Link + p.Drain; sum != p.Total {
			t.Errorf("point %s@%.1f: stage sum %d != total %d", p.Spec, p.Load, sum, p.Total)
		}
	}

	// -waterfall applies to grid sweeps only.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-adaptive", "-waterfall", filepath.Join(dir, "x.json")}, &stdout, &stderr); code != 2 {
		t.Fatalf("-adaptive -waterfall exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "grid sweeps only") {
		t.Errorf("stderr = %q", stderr.String())
	}
}
