package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// sweepArgs is a small, fast grid shared by the tests.
func sweepArgs(extra ...string) []string {
	base := []string{
		"-configs", "FR6,VC8", "-from", "0.2", "-to", "0.4", "-step", "0.2",
		"-sample", "150", "-warmup", "300",
	}
	return append(base, extra...)
}

// TestWorkersByteIdenticalOutput is the acceptance criterion: the sweep's
// stdout must be byte-identical for -workers=1 and -workers=4, in both table
// and CSV form.
func TestWorkersByteIdenticalOutput(t *testing.T) {
	for _, mode := range [][]string{nil, {"-csv"}} {
		var ref []byte
		for _, workers := range []string{"1", "4"} {
			var stdout, stderr bytes.Buffer
			args := sweepArgs("-workers", workers)
			args = append(args, mode...)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("workers=%s exit %d: %s", workers, code, stderr.String())
			}
			if ref == nil {
				ref = stdout.Bytes()
				continue
			}
			if !bytes.Equal(stdout.Bytes(), ref) {
				t.Errorf("mode %v: -workers=4 output differs from -workers=1:\n--- workers=1\n%s--- workers=4\n%s",
					mode, ref, stdout.Bytes())
			}
		}
	}
}

// TestResumeExecutesZeroNewJobs is the acceptance criterion: re-invoking an
// identical completed sweep with -resume must simulate nothing and still
// print the identical table.
func TestResumeExecutesZeroNewJobs(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sweep.jsonl")
	var first, firstErr bytes.Buffer
	if code := run(sweepArgs("-workers", "2", "-out", store), &first, &firstErr); code != 0 {
		t.Fatalf("first run exit %d: %s", code, firstErr.String())
	}
	if !strings.Contains(firstErr.String(), "4 simulated, 0 cached") {
		t.Fatalf("first run accounting unexpected: %s", firstErr.String())
	}

	var second, secondErr bytes.Buffer
	if code := run(sweepArgs("-workers", "2", "-out", store, "-resume"), &second, &secondErr); code != 0 {
		t.Fatalf("resumed run exit %d: %s", code, secondErr.String())
	}
	if !strings.Contains(secondErr.String(), "0 simulated, 4 cached") {
		t.Fatalf("resumed run simulated new jobs: %s", secondErr.String())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- resumed\n%s", first.Bytes(), second.Bytes())
	}
}

// TestFreshRunTruncatesStore: without -resume an existing -out store must not
// serve stale points.
func TestFreshRunTruncatesStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sweep.jsonl")
	var out, errBuf bytes.Buffer
	if code := run(sweepArgs("-out", store), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	errBuf.Reset()
	if code := run(sweepArgs("-out", store), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "4 simulated, 0 cached") {
		t.Errorf("fresh run served cached points: %s", errBuf.String())
	}
}

// TestFlagValidation: bad measurement flags must fail fast with a clear
// message and exit code 2 — a non-positive -step used to loop forever.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero step", []string{"-step", "0"}, "-step must be > 0"},
		{"negative step", []string{"-step", "-0.1"}, "-step must be > 0"},
		{"from > to", []string{"-from", "0.8", "-to", "0.2"}, "must not exceed -to"},
		{"non-positive from", []string{"-from", "0"}, "-from must be > 0"},
		{"non-positive sample", []string{"-sample", "0"}, "-sample must be > 0"},
		{"non-positive warmup", []string{"-warmup", "-5"}, "-warmup must be > 0"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 0"},
		{"resume without out", []string{"-resume"}, "-resume needs -out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not explain %q", stderr.String(), tc.want)
			}
			if stdout.Len() != 0 {
				t.Errorf("rejected invocation still wrote output: %s", stdout.String())
			}
		})
	}
}

// TestAdaptiveMode: -adaptive prints one bisection row per config and resumes
// from the store with zero new simulations.
func TestAdaptiveMode(t *testing.T) {
	store := filepath.Join(t.TempDir(), "sat.jsonl")
	args := []string{
		"-configs", "FR6", "-adaptive", "-step", "0.1",
		"-sample", "150", "-warmup", "300", "-workers", "2", "-out", store,
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	outStr := stdout.String()
	if !strings.Contains(outStr, "bisection") || !strings.Contains(outStr, "FR6") {
		t.Fatalf("adaptive table malformed:\n%s", outStr)
	}

	resumed := append(args, "-resume")
	var stdout2, stderr2 bytes.Buffer
	if code := run(resumed, &stdout2, &stderr2); code != 0 {
		t.Fatalf("resumed exit %d: %s", code, stderr2.String())
	}
	if !strings.Contains(stderr2.String(), "0 runs simulated") {
		t.Fatalf("resumed adaptive search re-simulated: %s", stderr2.String())
	}
}
