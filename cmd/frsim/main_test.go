package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRejectsBadObservabilityFlags: negative epochs and capacities used to
// fall back silently to defaults; now they fail fast with a clear message.
func TestRejectsBadObservabilityFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"metrics-epoch", []string{"-metrics-epoch", "-1"}, "-metrics-epoch must be >= 0"},
		{"trace-cap", []string{"-trace-cap", "-5"}, "-trace-cap must be >= 0"},
		{"timeseries-cap", []string{"-timeseries-cap", "-2"}, "-timeseries-cap must be >= 0"},
		{"load-zero", []string{"-load", "0"}, "-load must be in (0,2]"},
		{"load-high", []string{"-load", "2.5"}, "-load must be in (0,2]"},
		{"sample", []string{"-sample", "0"}, "-sample must be > 0"},
		{"warmup", []string{"-warmup", "-10"}, "-warmup must be > 0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr = %q, want substring %q", stderr.String(), tc.want)
			}
		})
	}
}

func TestRejectsUnknownConfigAndWiring(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-config", "XYZ"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown config exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown config") {
		t.Fatalf("stderr = %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-wiring", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown wiring exit = %d", code)
	}
}

// TestProfileArtifacts drives a tiny profiled run end to end: the JSON
// summary carries the Prof* result fields and artifact paths, and the
// written profile JSON and idle-fraction CSV parse.
func TestProfileArtifacts(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "profile.json")
	idlePath := filepath.Join(dir, "idle.csv")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-config", "FR6", "-radix", "4", "-load", "0.3",
		"-sample", "150", "-warmup", "300",
		"-profile", profPath, "-idle-csv", idlePath, "-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr.String())
	}
	var sum struct {
		Result struct {
			ProfTicks        int64   `json:"ProfTicks"`
			ProfIdleFraction float64 `json:"ProfIdleFraction"`
			ProfSchedWork    int64   `json:"ProfSchedWork"`
		} `json:"result"`
		ProfilePath    string `json:"profilePath"`
		IdleCSVPath    string `json:"idleCsvPath"`
		ProfileSummary string `json:"profileSummary"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, stdout.String())
	}
	if sum.Result.ProfTicks == 0 || sum.Result.ProfSchedWork == 0 {
		t.Fatalf("profile summary empty: %+v", sum.Result)
	}
	if sum.ProfilePath != profPath || sum.IdleCSVPath != idlePath {
		t.Fatalf("artifact paths wrong: %+v", sum)
	}
	if !strings.Contains(sum.ProfileSummary, "idle") {
		t.Fatalf("profileSummary = %q", sum.ProfileSummary)
	}

	raw, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatal(err)
	}
	var prof struct {
		Radix int               `json:"radix"`
		Nodes []json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal(raw, &prof); err != nil {
		t.Fatalf("profile JSON: %v", err)
	}
	if prof.Radix != 4 || len(prof.Nodes) != 16 {
		t.Fatalf("profile header: radix=%d nodes=%d", prof.Radix, len(prof.Nodes))
	}
	csv, err := os.ReadFile(idlePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "#") {
		t.Fatalf("idle CSV shape:\n%s", csv)
	}

	// The text renderer prints the profile summary and hottest routers.
	stdout.Reset()
	code = run([]string{
		"-config", "FR6", "-radix", "4", "-load", "0.3",
		"-sample", "150", "-warmup", "300",
		"-idle-csv", filepath.Join(dir, "idle2.csv"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "profile hot   router") {
		t.Fatalf("text output missing hot-router lines:\n%s", stdout.String())
	}
}

// TestWaterfallArtifacts: -waterfall populates the Waterfall* summary with an
// exact stage partition, writes the JSON artifact, and the text renderer
// prints the breakdown line.
func TestWaterfallArtifacts(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "waterfall.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-config", "FR6", "-radix", "4", "-load", "0.3",
		"-sample", "150", "-warmup", "300", "-check",
		"-waterfall", wfPath, "-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr.String())
	}
	var sum struct {
		Result struct {
			WaterfallPackets int64 `json:"WaterfallPackets"`
			WaterfallTotal   int64 `json:"WaterfallTotal"`
			WaterfallQueue   int64 `json:"WaterfallQueue"`
			WaterfallReserve int64 `json:"WaterfallReserve"`
			WaterfallArb     int64 `json:"WaterfallArb"`
			WaterfallStall   int64 `json:"WaterfallStall"`
			WaterfallSched   int64 `json:"WaterfallSched"`
			WaterfallLink    int64 `json:"WaterfallLink"`
			WaterfallDrain   int64 `json:"WaterfallDrain"`
		} `json:"result"`
		WaterfallPath    string `json:"waterfallPath"`
		WaterfallSummary string `json:"waterfallSummary"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, stdout.String())
	}
	r := sum.Result
	if r.WaterfallPackets == 0 || r.WaterfallTotal == 0 {
		t.Fatalf("waterfall summary empty: %+v", r)
	}
	if s := r.WaterfallQueue + r.WaterfallReserve + r.WaterfallArb + r.WaterfallStall +
		r.WaterfallSched + r.WaterfallLink + r.WaterfallDrain; s != r.WaterfallTotal {
		t.Fatalf("stage sum %d != total %d", s, r.WaterfallTotal)
	}
	if sum.WaterfallPath != wfPath || !strings.Contains(sum.WaterfallSummary, "queue") {
		t.Fatalf("artifact fields wrong: path=%q summary=%q", sum.WaterfallPath, sum.WaterfallSummary)
	}

	raw, err := os.ReadFile(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	var wf struct {
		Packets int64             `json:"packets"`
		Stages  []json.RawMessage `json:"stages"`
	}
	if err := json.Unmarshal(raw, &wf); err != nil {
		t.Fatalf("waterfall JSON: %v", err)
	}
	if wf.Packets != r.WaterfallPackets || len(wf.Stages) != 7 {
		t.Fatalf("waterfall artifact: packets=%d stages=%d", wf.Packets, len(wf.Stages))
	}

	// CSV artifact via extension, and the text renderer's breakdown line.
	csvPath := filepath.Join(dir, "waterfall.csv")
	stdout.Reset()
	stderr.Reset()
	code = run([]string{
		"-config", "VC8", "-radix", "4", "-load", "0.3",
		"-sample", "150", "-warmup", "300",
		"-waterfall", csvPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "waterfall     waterfall:") {
		t.Fatalf("text output missing waterfall line:\n%s", stdout.String())
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(csv)), "\n"); len(lines) != 8 {
		t.Fatalf("waterfall CSV shape (%d lines):\n%s", len(lines), csv)
	}
}
