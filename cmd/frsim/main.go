// Command frsim runs one flow-control configuration at one offered load and
// reports latency and throughput.
//
// Usage:
//
//	frsim -config FR6 -wiring fast -load 0.5
//	frsim -config VC16 -wiring leading -pktlen 21 -load 0.3 -sample 20000
//	frsim -custom -fr -buffers 10 -ctrlvcs 2 -horizon 64 -load 0.6
package main

import (
	"flag"
	"fmt"
	"os"

	"frfc"
)

func main() {
	var (
		config  = flag.String("config", "FR6", "named configuration: FR6, FR13, VC8, VC16, VC32")
		wiring  = flag.String("wiring", "fast", "physical wiring: fast (4x control wires) or leading (1-cycle wires, control lead)")
		lead    = flag.Int("lead", 1, "control lead in cycles (leading wiring only)")
		load    = flag.Float64("load", 0.5, "offered traffic as a fraction of capacity")
		pktLen  = flag.Int("pktlen", 5, "packet length in data flits")
		radix   = flag.Int("radix", 8, "mesh radix k (k x k nodes)")
		sample  = flag.Int("sample", 5000, "packets to sample")
		warmup  = flag.Int("warmup", 3000, "minimum warm-up cycles")
		seed    = flag.Uint64("seed", 0, "random seed (0 = default)")
		pattern = flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, bitcomp, tornado")

		custom  = flag.Bool("custom", false, "build a custom configuration from the knobs below instead of -config")
		fr      = flag.Bool("fr", true, "custom: use flit-reservation flow control (false = virtual channels)")
		buffers = flag.Int("buffers", 6, "custom FR: data buffers per input pool")
		ctrlVCs = flag.Int("ctrlvcs", 2, "custom FR: control virtual channels")
		horizon = flag.Int("horizon", 32, "custom FR: scheduling horizon in cycles")
		leads   = flag.Int("leads", 1, "custom FR: data flits led per control flit")
		vcs     = flag.Int("vcs", 2, "custom VC: virtual channels")
		bufVC   = flag.Int("bufpervc", 4, "custom VC: buffers per virtual channel")
	)
	flag.Parse()

	w, err := wiringOf(*wiring)
	if err != nil {
		fatal(err)
	}
	var spec frfc.Spec
	if *custom {
		spec, err = frfc.Custom("custom", frfc.Options{
			FlitReservation: *fr,
			MeshRadix:       *radix,
			PacketLen:       *pktLen,
			DataBuffers:     *buffers,
			CtrlVCs:         *ctrlVCs,
			Horizon:         *horizon,
			LeadsPerCtrl:    *leads,
			LeadCycles:      leadFor(w, *lead),
			VCs:             *vcs,
			BufPerVC:        *bufVC,
			Wiring:          w,
			Pattern:         *pattern,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		spec, err = named(*config, w, *lead, *pktLen)
		if err != nil {
			fatal(err)
		}
		spec = spec.WithMeshRadix(*radix)
		if p := *pattern; p != "uniform" {
			opts := frfc.Options{}
			_ = opts
			// Named presets keep uniform traffic, matching the paper;
			// use -custom for other patterns.
			fatal(fmt.Errorf("named configs use uniform traffic; use -custom for pattern %q", p))
		}
	}
	spec = spec.WithSampling(*sample, *warmup)
	if *seed != 0 {
		spec = spec.WithSeed(*seed)
	}

	r := frfc.Run(spec, *load)
	fmt.Printf("config        %s (%s wiring, %d-flit packets, %dx%d mesh)\n", spec.Name(), *wiring, *pktLen, *radix, *radix)
	fmt.Printf("offered load  %.1f%% of capacity (effective %.1f%% after bandwidth overhead)\n", r.Load*100, r.EffectiveLoad*100)
	fmt.Printf("avg latency   %.2f cycles (95%% CI ±%.2f, min %d, max %d)\n", r.AvgLatency, r.CI95, r.MinLatency, r.MaxLatency)
	fmt.Printf("percentiles   p50 %d, p95 %d, p99 %d cycles\n", r.P50, r.P95, r.P99)
	fmt.Printf("decomposition %.2f cycles source queueing + %.2f cycles network\n", r.AvgQueueDelay, r.AvgLatency-r.AvgQueueDelay)
	fmt.Printf("accepted      %.1f%% of capacity\n", r.AcceptedLoad*100)
	fmt.Printf("sample        %d/%d packets delivered over %d cycles\n", r.SampledDelivered, r.SampleSize, r.Cycles)
	fmt.Printf("pool full     %.1f%% of measured cycles (central router)\n", r.PoolFullFraction*100)
	if r.Saturated {
		fmt.Println("status        SATURATED — offered load exceeds sustainable throughput")
	}
}

func wiringOf(s string) (frfc.Wiring, error) {
	switch s {
	case "fast":
		return frfc.FastControl, nil
	case "leading":
		return frfc.LeadingControl, nil
	default:
		return "", fmt.Errorf("unknown wiring %q (want fast or leading)", s)
	}
}

func leadFor(w frfc.Wiring, lead int) int {
	if w == frfc.LeadingControl {
		return lead
	}
	return 0
}

func named(name string, w frfc.Wiring, lead, pktLen int) (frfc.Spec, error) {
	switch name {
	case "FR6":
		if w == frfc.LeadingControl {
			return frfc.FRLead(lead, pktLen), nil
		}
		return frfc.FR6(w, pktLen), nil
	case "FR13":
		return frfc.FR13(w, pktLen), nil
	case "VC8":
		return frfc.VC8(w, pktLen), nil
	case "VC16":
		return frfc.VC16(w, pktLen), nil
	case "VC32":
		return frfc.VC32(w, pktLen), nil
	default:
		return frfc.Spec{}, fmt.Errorf("unknown config %q (want FR6, FR13, VC8, VC16, VC32)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frsim:", err)
	os.Exit(2)
}
