// Command frsim runs one flow-control configuration at one offered load and
// reports latency and throughput.
//
// Usage:
//
//	frsim -config FR6 -wiring fast -load 0.5
//	frsim -config VC16 -wiring leading -pktlen 21 -load 0.3 -sample 20000
//	frsim -custom -fr -buffers 10 -ctrlvcs 2 -horizon 64 -load 0.6
//
// Observability:
//
//	frsim -config FR6 -load 0.5 -trace trace.json -metrics metrics.json -heatmap heat
//	frsim -config FR6 -load 0.5 -json -metrics metrics.json
//	frsim -config FR6 -load 0.5 -timeseries series.csv
//	frsim -config FR6 -load 0.5 -status-addr :8080
//	frsim -config FR6 -load 0.9 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Hard-fault scenarios (flit-reservation configurations):
//
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -fail-link 5-6 -fail-at 2000 -recover-at 6000
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -fail-router 9 -fail-at 2000
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -scenario "down 5-6 @2000; up 5-6 @6000" -check
//	frsim -config FR6 -routing yx -load 0.5
//
// Data integrity and chaos (bit errors are delivered, not lost; the hop CRC
// and the end-to-end check hunt them):
//
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -ber 1e-3 -crc-bits 4 -e2e-check
//	frsim -config VC8 -radix 4 -load 0.3 -ber 1e-3
//	frsim -config FR6 -radix 4 -load 0.3 -chaos 0.5 -chaos-seed 7 -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"frfc"
)

func main() {
	var (
		config  = flag.String("config", "FR6", "named configuration: FR6, FR13, VC8, VC16, VC32")
		wiring  = flag.String("wiring", "fast", "physical wiring: fast (4x control wires) or leading (1-cycle wires, control lead)")
		lead    = flag.Int("lead", 1, "control lead in cycles (leading wiring only)")
		load    = flag.Float64("load", 0.5, "offered traffic as a fraction of capacity")
		pktLen  = flag.Int("pktlen", 5, "packet length in data flits")
		radix   = flag.Int("radix", 8, "mesh radix k (k x k nodes)")
		sample  = flag.Int("sample", 5000, "packets to sample")
		warmup  = flag.Int("warmup", 3000, "minimum warm-up cycles")
		seed    = flag.Uint64("seed", 0, "random seed (0 = default)")
		pattern = flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, bitcomp, tornado")

		custom  = flag.Bool("custom", false, "build a custom configuration from the knobs below instead of -config")
		fr      = flag.Bool("fr", true, "custom: use flit-reservation flow control (false = virtual channels)")
		buffers = flag.Int("buffers", 6, "custom FR: data buffers per input pool")
		ctrlVCs = flag.Int("ctrlvcs", 2, "custom FR: control virtual channels")
		horizon = flag.Int("horizon", 32, "custom FR: scheduling horizon in cycles")
		leads   = flag.Int("leads", 1, "custom FR: data flits led per control flit")
		vcs     = flag.Int("vcs", 2, "custom VC: virtual channels")
		bufVC   = flag.Int("bufpervc", 4, "custom VC: buffers per virtual channel")

		routing    = flag.String("routing", "", "routing algorithm: xy (default), yx, or table (fault-aware lookup tables); FR configs only")
		scenario   = flag.String("scenario", "", `hard-fault schedule, e.g. "down 5-6 @2000; up 5-6 @6000; kill 9 @8000"; FR configs only`)
		failLink   = flag.String("fail-link", "", "shorthand: sever the link between these neighbor nodes (A-B) at -fail-at")
		failRouter = flag.Int("fail-router", -1, "shorthand: permanently fail this node's router at -fail-at")
		failAt     = flag.Int64("fail-at", 2000, "cycle at which -fail-link/-fail-router strikes")
		recoverAt  = flag.Int64("recover-at", 0, "cycle at which the -fail-link link is restored (0 = never)")
		retry      = flag.Int("retry", 0, "end-to-end retry budget per packet (0 = off; fault scenarios need it to recover in-flight losses)")
		check      = flag.Bool("check", false, "run the per-cycle invariant checker (credit conservation, table accounting); FR configs only")
		ber        = flag.Float64("ber", 0, "per-flit bit-error probability on inter-router links (delivered corrupted, not lost)")
		crcBits    = flag.Int("crc-bits", 0, "modeled per-hop CRC width: corruption detected with probability 1-2^-bits (0 = default 16 under -ber, negative = no hop detection)")
		e2eCheck   = flag.Bool("e2e-check", false, "arm the end-to-end payload checksum: corrupted packets are retried instead of delivered; FR configs only")
		chaos      = flag.Float64("chaos", 0, "chaos campaign intensity in (0,1]: composed loss, bit errors, link flaps, corruption spikes and (>=0.75) router kills; FR configs only")
		chaosSeed  = flag.Uint64("chaos-seed", 0, "chaos plan generator seed (0 = default)")

		traceOut     = flag.String("trace", "", "write a Perfetto-loadable Chrome trace-event JSON flit trace to this file")
		traceCap     = flag.Int("trace-cap", 0, "trace ring capacity in events, newest kept on overflow (0 = default)")
		traceNode    = flag.Int("trace-node", -1, "export only trace events at this router (-1 = all)")
		tracePkt     = flag.Uint64("trace-packet", 0, "export only this packet's trace events (0 = all)")
		traceFrom    = flag.Int64("trace-from", 0, "export only trace events at or after this cycle")
		traceTo      = flag.Int64("trace-to", 0, "export only trace events at or before this cycle (0 = unbounded)")
		metricsOut   = flag.String("metrics", "", "write the per-router metrics registry as JSON to this file")
		metricsEpoch = flag.Int("metrics-epoch", 0, "gauge sampling period in cycles (0 = default)")
		heatmap      = flag.String("heatmap", "", "write PREFIX-occupancy.csv and PREFIX-utilization.csv heatmaps (implies metrics)")
		seriesOut    = flag.String("timeseries", "", "write the per-epoch telemetry series to this file, one row per metrics epoch (.json extension = JSON, anything else = CSV; implies metrics)")
		seriesCap    = flag.Int("timeseries-cap", 0, "retained time-series points, oldest dropped on overflow (0 = keep every epoch)")
		statusAddr   = flag.String("status-addr", "", "serve live run status over HTTP on this host:port (/status JSON snapshot, /metrics Prometheus exposition); the result stays bit-identical")
		jsonOut      = flag.Bool("json", false, "print one machine-readable JSON summary object instead of text")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	)
	flag.Parse()

	w, err := wiringOf(*wiring)
	if err != nil {
		fatal(err)
	}
	var spec frfc.Spec
	if *custom {
		spec, err = frfc.Custom("custom", frfc.Options{
			FlitReservation: *fr,
			MeshRadix:       *radix,
			PacketLen:       *pktLen,
			DataBuffers:     *buffers,
			CtrlVCs:         *ctrlVCs,
			Horizon:         *horizon,
			LeadsPerCtrl:    *leads,
			LeadCycles:      leadFor(w, *lead),
			VCs:             *vcs,
			BufPerVC:        *bufVC,
			Wiring:          w,
			Pattern:         *pattern,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		spec, err = named(*config, w, *lead, *pktLen)
		if err != nil {
			fatal(err)
		}
		spec = spec.WithMeshRadix(*radix)
		if p := *pattern; p != "uniform" {
			// Named presets keep uniform traffic, matching the paper;
			// use -custom for other patterns.
			fatal(fmt.Errorf("named configs use uniform traffic; use -custom for pattern %q", p))
		}
	}
	scn, err := scenarioOf(*scenario, *failLink, *failRouter, *failAt, *recoverAt)
	if err != nil {
		fatal(err)
	}
	if scn != "" {
		spec, err = spec.WithScenario(scn)
		if err != nil {
			fatal(err)
		}
	}
	if *routing != "" {
		spec = spec.WithRouting(*routing)
	}
	if *retry > 0 {
		spec = spec.WithRetry(*retry)
	}
	if *check {
		spec = spec.WithCheck(true)
	}
	if *ber > 0 {
		spec = spec.WithBER(*ber)
	}
	if *crcBits != 0 {
		spec = spec.WithCRC(*crcBits)
	}
	if *e2eCheck {
		spec = spec.WithE2ECheck(true)
	}
	if *chaos > 0 {
		if scn != "" {
			fatal(fmt.Errorf("-chaos and -scenario/-fail-* are mutually exclusive: the chaos plan generates its own fault schedule"))
		}
		spec = spec.WithChaos(*chaos, *chaosSeed)
	}
	spec = spec.WithSampling(*sample, *warmup)
	if *seed != 0 {
		spec = spec.WithSeed(*seed)
	}

	wantMetrics := *metricsOut != "" || *heatmap != ""
	wantTrace := *traceOut != ""
	wantSeries := *seriesOut != ""
	var obs *frfc.Observer
	if wantMetrics || wantTrace || wantSeries || *statusAddr != "" {
		obs = frfc.NewObserver(frfc.ObserverOptions{
			Metrics:            wantMetrics || *statusAddr != "",
			MetricsEpoch:       *metricsEpoch,
			Trace:              wantTrace,
			TraceCapacity:      *traceCap,
			TimeSeries:         wantSeries,
			TimeSeriesCapacity: *seriesCap,
		})
	}
	var st *frfc.StatusServer
	if *statusAddr != "" {
		var err error
		st, err = frfc.ServeStatus(*statusAddr)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		fmt.Fprintf(os.Stderr, "frsim: status on http://%s/status, metrics on http://%s/metrics\n", st.Addr(), st.Addr())
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	r := frfc.RunLive(spec, *load, obs, st)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	sum := summary{
		Config:    spec.Name(),
		Wiring:    *wiring,
		PktLen:    *pktLen,
		Radix:     *radix,
		Seed:      *seed,
		Pattern:   *pattern,
		Routing:   *routing,
		Scenario:  scn,
		BER:       *ber,
		Chaos:     *chaos,
		ChaosSeed: *chaosSeed,
		Result:    r,
	}
	if *metricsOut != "" {
		writeTo(*metricsOut, obs.WriteMetricsJSON)
		sum.MetricsPath = *metricsOut
	}
	if *heatmap != "" {
		sum.OccupancyCSVPath = *heatmap + "-occupancy.csv"
		sum.UtilizationCSVPath = *heatmap + "-utilization.csv"
		writeTo(sum.OccupancyCSVPath, obs.WriteOccupancyCSV)
		writeTo(sum.UtilizationCSVPath, obs.WriteUtilizationCSV)
	}
	if *seriesOut != "" {
		write := obs.WriteTimeSeriesCSV
		if strings.HasSuffix(*seriesOut, ".json") {
			write = obs.WriteTimeSeriesJSON
		}
		writeTo(*seriesOut, write)
		sum.TimeSeriesPath = *seriesOut
		sum.TimeSeriesPoints, sum.TimeSeriesDropped = obs.TimeSeriesLen()
	}
	if *traceOut != "" {
		writeTo(*traceOut, func(w io.Writer) error {
			return obs.WriteTrace(w, frfc.TraceFilter{
				Node:   *traceNode,
				Packet: *tracePkt,
				From:   *traceFrom,
				To:     *traceTo,
			})
		})
		sum.TracePath = *traceOut
		sum.TraceEvents, sum.TraceDropped = obs.TraceEventCount()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("config        %s (%s wiring, %d-flit packets, %dx%d mesh)\n", spec.Name(), *wiring, *pktLen, *radix, *radix)
	fmt.Printf("offered load  %.1f%% of capacity (effective %.1f%% after bandwidth overhead)\n", r.Load*100, r.EffectiveLoad*100)
	if r.Batches > 0 {
		fmt.Printf("avg latency   %.2f cycles (95%% CI ±%.2f batch-means over %d batches, ±%.2f i.i.d.; min %d, max %d)\n",
			r.AvgLatency, r.BatchCI95, r.Batches, r.CI95, r.MinLatency, r.MaxLatency)
	} else {
		fmt.Printf("avg latency   %.2f cycles (95%% CI ±%.2f, min %d, max %d)\n", r.AvgLatency, r.CI95, r.MinLatency, r.MaxLatency)
	}
	if r.CISuspect {
		fmt.Printf("note          latency samples are autocorrelated (lag-1 r=%.2f); trust the batch-means interval\n", r.Lag1Autocorr)
	}
	fmt.Printf("percentiles   p50 %d, p95 %d, p99 %d cycles\n", r.P50, r.P95, r.P99)
	fmt.Printf("decomposition %.2f cycles source queueing + %.2f cycles network\n", r.AvgQueueDelay, r.AvgLatency-r.AvgQueueDelay)
	fmt.Printf("accepted      %.1f%% of capacity\n", r.AcceptedLoad*100)
	fmt.Printf("sample        %d/%d packets delivered over %d cycles\n", r.SampledDelivered, r.SampleSize, r.Cycles)
	fmt.Printf("pool full     %.1f%% of measured cycles (central router)\n", r.PoolFullFraction*100)
	if scn != "" {
		fmt.Printf("scenario      %s\n", scn)
		fmt.Printf("degradation   %.1f%% of resolved packets delivered, %d unreachable, %d flits dropped, %d retried, %d abandoned\n",
			r.DeliveredFraction*100, r.UnreachablePackets, r.DroppedFlits, r.RetriedPackets, r.AbandonedPackets)
	}
	if *chaos > 0 {
		fmt.Printf("chaos         intensity %.2f (seed %d): %.1f%% of resolved packets delivered, %d unreachable, %d retried, %d abandoned\n",
			*chaos, *chaosSeed, r.DeliveredFraction*100, r.UnreachablePackets, r.RetriedPackets, r.AbandonedPackets)
	}
	if *ber > 0 || *chaos > 0 {
		fmt.Printf("integrity     %d flits corrupted, %d caught by hop CRC, %d escaped to destination, %d phantom reservations, %d slots reclaimed\n",
			r.CorruptedFlits, r.CrcDetected, r.CorruptEscapes, r.PhantomReservations, r.ReclaimedSlots)
	}
	if r.Saturated {
		fmt.Println("status        SATURATED — offered load exceeds sustainable throughput")
	}
	if r.WarmupUnstable {
		fmt.Println("status        WARMUP-UNSTABLE — warm-up hit its cycle cap before queues settled; treat measurements with care")
	}
	if sum.MetricsPath != "" {
		fmt.Printf("metrics       %s\n", sum.MetricsPath)
	}
	if sum.OccupancyCSVPath != "" {
		fmt.Printf("heatmaps      %s, %s\n", sum.OccupancyCSVPath, sum.UtilizationCSVPath)
	}
	if sum.TracePath != "" {
		fmt.Printf("trace         %s (%d events buffered, %d overwritten)\n", sum.TracePath, sum.TraceEvents, sum.TraceDropped)
	}
	if sum.TimeSeriesPath != "" {
		fmt.Printf("timeseries    %s (%d points, %d dropped)\n", sum.TimeSeriesPath, sum.TimeSeriesPoints, sum.TimeSeriesDropped)
	}
}

// summary is the -json output: one machine-readable object per run, carrying
// the result plus the paths of every artifact the run wrote.
type summary struct {
	Config             string      `json:"config"`
	Wiring             string      `json:"wiring"`
	PktLen             int         `json:"pktLen"`
	Radix              int         `json:"radix"`
	Seed               uint64      `json:"seed,omitempty"`
	Pattern            string      `json:"pattern"`
	Routing            string      `json:"routing,omitempty"`
	Scenario           string      `json:"scenario,omitempty"`
	BER                float64     `json:"ber,omitempty"`
	Chaos              float64     `json:"chaos,omitempty"`
	ChaosSeed          uint64      `json:"chaosSeed,omitempty"`
	Result             frfc.Result `json:"result"`
	MetricsPath        string      `json:"metricsPath,omitempty"`
	OccupancyCSVPath   string      `json:"occupancyCsvPath,omitempty"`
	UtilizationCSVPath string      `json:"utilizationCsvPath,omitempty"`
	TracePath          string      `json:"tracePath,omitempty"`
	TraceEvents        int         `json:"traceEvents,omitempty"`
	TraceDropped       uint64      `json:"traceDropped,omitempty"`
	TimeSeriesPath     string      `json:"timeSeriesPath,omitempty"`
	TimeSeriesPoints   int         `json:"timeSeriesPoints,omitempty"`
	TimeSeriesDropped  int64       `json:"timeSeriesDropped,omitempty"`
}

// writeTo creates path and streams one export into it, failing the run on any
// error so a missing artifact is never silent.
func writeTo(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// scenarioOf merges the -scenario grammar with the -fail-link/-fail-router
// shorthands into one schedule string.
func scenarioOf(scenario, failLink string, failRouter int, failAt, recoverAt int64) (string, error) {
	var parts []string
	if scenario != "" {
		parts = append(parts, scenario)
	}
	if failLink != "" {
		parts = append(parts, fmt.Sprintf("down %s @%d", failLink, failAt))
		if recoverAt > 0 {
			parts = append(parts, fmt.Sprintf("up %s @%d", failLink, recoverAt))
		}
	} else if recoverAt > 0 {
		return "", fmt.Errorf("-recover-at needs -fail-link")
	}
	if failRouter >= 0 {
		parts = append(parts, fmt.Sprintf("kill %d @%d", failRouter, failAt))
	}
	return strings.Join(parts, "; "), nil
}

func wiringOf(s string) (frfc.Wiring, error) {
	switch s {
	case "fast":
		return frfc.FastControl, nil
	case "leading":
		return frfc.LeadingControl, nil
	default:
		return "", fmt.Errorf("unknown wiring %q (want fast or leading)", s)
	}
}

func leadFor(w frfc.Wiring, lead int) int {
	if w == frfc.LeadingControl {
		return lead
	}
	return 0
}

func named(name string, w frfc.Wiring, lead, pktLen int) (frfc.Spec, error) {
	switch name {
	case "FR6":
		if w == frfc.LeadingControl {
			return frfc.FRLead(lead, pktLen), nil
		}
		return frfc.FR6(w, pktLen), nil
	case "FR13":
		return frfc.FR13(w, pktLen), nil
	case "VC8":
		return frfc.VC8(w, pktLen), nil
	case "VC16":
		return frfc.VC16(w, pktLen), nil
	case "VC32":
		return frfc.VC32(w, pktLen), nil
	default:
		return frfc.Spec{}, fmt.Errorf("unknown config %q (want FR6, FR13, VC8, VC16, VC32)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "frsim:", err)
	os.Exit(2)
}
