// Command frsim runs one flow-control configuration at one offered load and
// reports latency and throughput.
//
// Usage:
//
//	frsim -config FR6 -wiring fast -load 0.5
//	frsim -config VC16 -wiring leading -pktlen 21 -load 0.3 -sample 20000
//	frsim -custom -fr -buffers 10 -ctrlvcs 2 -horizon 64 -load 0.6
//
// Observability:
//
//	frsim -config FR6 -load 0.5 -trace trace.json -metrics metrics.json -heatmap heat
//	frsim -config FR6 -load 0.5 -json -metrics metrics.json
//	frsim -config FR6 -load 0.5 -timeseries series.csv
//	frsim -config FR6 -load 0.5 -profile profile.json -idle-csv idle.csv
//	frsim -config FR6 -load 0.5 -waterfall waterfall.json
//	frsim -config FR6 -load 0.5 -status-addr :8080
//	frsim -config FR6 -load 0.9 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Hard-fault scenarios (flit-reservation configurations):
//
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -fail-link 5-6 -fail-at 2000 -recover-at 6000
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -fail-router 9 -fail-at 2000
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -scenario "down 5-6 @2000; up 5-6 @6000" -check
//	frsim -config FR6 -routing yx -load 0.5
//
// Data integrity and chaos (bit errors are delivered, not lost; the hop CRC
// and the end-to-end check hunt them):
//
//	frsim -config FR6 -radix 4 -load 0.3 -retry 8 -ber 1e-3 -crc-bits 4 -e2e-check
//	frsim -config VC8 -radix 4 -load 0.3 -ber 1e-3
//	frsim -config FR6 -radix 4 -load 0.3 -chaos 0.5 -chaos-seed 7 -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"frfc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive the
// whole command and assert on output and exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("frsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		config  = fs.String("config", "FR6", "named configuration: FR6, FR13, VC8, VC16, VC32")
		wiring  = fs.String("wiring", "fast", "physical wiring: fast (4x control wires) or leading (1-cycle wires, control lead)")
		lead    = fs.Int("lead", 1, "control lead in cycles (leading wiring only)")
		load    = fs.Float64("load", 0.5, "offered traffic as a fraction of capacity")
		pktLen  = fs.Int("pktlen", 5, "packet length in data flits")
		radix   = fs.Int("radix", 8, "mesh radix k (k x k nodes)")
		sample  = fs.Int("sample", 5000, "packets to sample")
		warmup  = fs.Int("warmup", 3000, "minimum warm-up cycles")
		seed    = fs.Uint64("seed", 0, "random seed (0 = default)")
		pattern = fs.String("pattern", "uniform", "traffic pattern: uniform, transpose, bitcomp, tornado")

		custom  = fs.Bool("custom", false, "build a custom configuration from the knobs below instead of -config")
		fr      = fs.Bool("fr", true, "custom: use flit-reservation flow control (false = virtual channels)")
		buffers = fs.Int("buffers", 6, "custom FR: data buffers per input pool")
		ctrlVCs = fs.Int("ctrlvcs", 2, "custom FR: control virtual channels")
		horizon = fs.Int("horizon", 32, "custom FR: scheduling horizon in cycles")
		leads   = fs.Int("leads", 1, "custom FR: data flits led per control flit")
		vcs     = fs.Int("vcs", 2, "custom VC: virtual channels")
		bufVC   = fs.Int("bufpervc", 4, "custom VC: buffers per virtual channel")

		routing    = fs.String("routing", "", "routing algorithm: xy (default), yx, or table (fault-aware lookup tables); FR configs only")
		scenario   = fs.String("scenario", "", `hard-fault schedule, e.g. "down 5-6 @2000; up 5-6 @6000; kill 9 @8000"; FR configs only`)
		failLink   = fs.String("fail-link", "", "shorthand: sever the link between these neighbor nodes (A-B) at -fail-at")
		failRouter = fs.Int("fail-router", -1, "shorthand: permanently fail this node's router at -fail-at")
		failAt     = fs.Int64("fail-at", 2000, "cycle at which -fail-link/-fail-router strikes")
		recoverAt  = fs.Int64("recover-at", 0, "cycle at which the -fail-link link is restored (0 = never)")
		retry      = fs.Int("retry", 0, "end-to-end retry budget per packet (0 = off; fault scenarios need it to recover in-flight losses)")
		check      = fs.Bool("check", false, "run the per-cycle invariant checker (credit conservation, table accounting); FR configs only")
		ber        = fs.Float64("ber", 0, "per-flit bit-error probability on inter-router links (delivered corrupted, not lost)")
		crcBits    = fs.Int("crc-bits", 0, "modeled per-hop CRC width: corruption detected with probability 1-2^-bits (0 = default 16 under -ber, negative = no hop detection)")
		e2eCheck   = fs.Bool("e2e-check", false, "arm the end-to-end payload checksum: corrupted packets are retried instead of delivered; FR configs only")
		chaos      = fs.Float64("chaos", 0, "chaos campaign intensity in (0,1]: composed loss, bit errors, link flaps, corruption spikes and (>=0.75) router kills; FR configs only")
		chaosSeed  = fs.Uint64("chaos-seed", 0, "chaos plan generator seed (0 = default)")

		traceOut     = fs.String("trace", "", "write a Perfetto-loadable Chrome trace-event JSON flit trace to this file")
		traceCap     = fs.Int("trace-cap", 0, "trace ring capacity in events, newest kept on overflow (0 = default)")
		traceNode    = fs.Int("trace-node", -1, "export only trace events at this router (-1 = all)")
		tracePkt     = fs.Uint64("trace-packet", 0, "export only this packet's trace events (0 = all)")
		traceFrom    = fs.Int64("trace-from", 0, "export only trace events at or after this cycle")
		traceTo      = fs.Int64("trace-to", 0, "export only trace events at or before this cycle (0 = unbounded)")
		metricsOut   = fs.String("metrics", "", "write the per-router metrics registry as JSON to this file")
		metricsEpoch = fs.Int("metrics-epoch", 0, "gauge and memory sampling period in cycles (0 = default)")
		heatmap      = fs.String("heatmap", "", "write PREFIX-occupancy.csv and PREFIX-utilization.csv heatmaps (implies metrics)")
		seriesOut    = fs.String("timeseries", "", "write the per-epoch telemetry series to this file, one row per metrics epoch (.json extension = JSON, anything else = CSV; implies metrics)")
		seriesCap    = fs.Int("timeseries-cap", 0, "retained time-series points, oldest dropped on overflow (0 = keep every epoch)")
		profileOut   = fs.String("profile", "", "write the simulator self-profile (per-node activity accounting, phase attribution, memory epochs) as JSON to this file")
		wfOut        = fs.String("waterfall", "", "collect per-packet latency provenance and write the stage waterfall to this file (.csv extension = CSV, anything else = JSON); also prints the per-stage breakdown")
		idleCSV      = fs.String("idle-csv", "", "write the k x k idle-router-tick-fraction heatmap as CSV to this file (implies -profile collection)")
		statusAddr   = fs.String("status-addr", "", "serve live run status over HTTP on this host:port (/status JSON snapshot, /metrics Prometheus exposition); the result stays bit-identical")
		jsonOut      = fs.Bool("json", false, "print one machine-readable JSON summary object instead of text")
		cpuprofile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile   = fs.String("memprofile", "", "write a pprof heap profile after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "frsim: "+format+"\n", a...)
		return 2
	}

	// Flag validation: a negative capacity or epoch would silently fall back
	// to a default (or misbehave) deep inside the observer; reject it loudly
	// instead.
	if *metricsEpoch < 0 {
		return fail("-metrics-epoch must be >= 0 (got %d; 0 means the default epoch)", *metricsEpoch)
	}
	if *traceCap < 0 {
		return fail("-trace-cap must be >= 0 (got %d; 0 means the default capacity)", *traceCap)
	}
	if *seriesCap < 0 {
		return fail("-timeseries-cap must be >= 0 (got %d; 0 keeps every epoch)", *seriesCap)
	}
	if *load <= 0 || *load > 2 {
		return fail("-load must be in (0,2] (got %g)", *load)
	}
	if *sample <= 0 {
		return fail("-sample must be > 0 (got %d)", *sample)
	}
	if *warmup <= 0 {
		return fail("-warmup must be > 0 (got %d)", *warmup)
	}

	w, err := wiringOf(*wiring)
	if err != nil {
		return fail("%v", err)
	}
	var spec frfc.Spec
	if *custom {
		spec, err = frfc.Custom("custom", frfc.Options{
			FlitReservation: *fr,
			MeshRadix:       *radix,
			PacketLen:       *pktLen,
			DataBuffers:     *buffers,
			CtrlVCs:         *ctrlVCs,
			Horizon:         *horizon,
			LeadsPerCtrl:    *leads,
			LeadCycles:      leadFor(w, *lead),
			VCs:             *vcs,
			BufPerVC:        *bufVC,
			Wiring:          w,
			Pattern:         *pattern,
		})
		if err != nil {
			return fail("%v", err)
		}
	} else {
		spec, err = named(*config, w, *lead, *pktLen)
		if err != nil {
			return fail("%v", err)
		}
		spec = spec.WithMeshRadix(*radix)
		if p := *pattern; p != "uniform" {
			// Named presets keep uniform traffic, matching the paper;
			// use -custom for other patterns.
			return fail("named configs use uniform traffic; use -custom for pattern %q", p)
		}
	}
	scn, err := scenarioOf(*scenario, *failLink, *failRouter, *failAt, *recoverAt)
	if err != nil {
		return fail("%v", err)
	}
	if scn != "" {
		spec, err = spec.WithScenario(scn)
		if err != nil {
			return fail("%v", err)
		}
	}
	if *routing != "" {
		spec = spec.WithRouting(*routing)
	}
	if *retry > 0 {
		spec = spec.WithRetry(*retry)
	}
	if *check {
		spec = spec.WithCheck(true)
	}
	if *ber > 0 {
		spec = spec.WithBER(*ber)
	}
	if *crcBits != 0 {
		spec = spec.WithCRC(*crcBits)
	}
	if *e2eCheck {
		spec = spec.WithE2ECheck(true)
	}
	if *chaos > 0 {
		if scn != "" {
			return fail("-chaos and -scenario/-fail-* are mutually exclusive: the chaos plan generates its own fault schedule")
		}
		spec = spec.WithChaos(*chaos, *chaosSeed)
	}
	spec = spec.WithSampling(*sample, *warmup)
	if *seed != 0 {
		spec = spec.WithSeed(*seed)
	}

	wantMetrics := *metricsOut != "" || *heatmap != ""
	wantTrace := *traceOut != ""
	wantSeries := *seriesOut != ""
	wantProfile := *profileOut != "" || *idleCSV != ""
	wantWaterfall := *wfOut != ""
	var obs *frfc.Observer
	if wantMetrics || wantTrace || wantSeries || wantProfile || wantWaterfall || *statusAddr != "" {
		obs = frfc.NewObserver(frfc.ObserverOptions{
			Metrics:            wantMetrics || *statusAddr != "",
			MetricsEpoch:       *metricsEpoch,
			Trace:              wantTrace,
			TraceCapacity:      *traceCap,
			TimeSeries:         wantSeries,
			TimeSeriesCapacity: *seriesCap,
			Profile:            wantProfile,
			Waterfall:          wantWaterfall,
		})
	}
	var st *frfc.StatusServer
	if *statusAddr != "" {
		var err error
		var bound string
		st, bound, err = frfc.ServeStatus(*statusAddr)
		if err != nil {
			return fail("%v", err)
		}
		defer st.Close()
		fmt.Fprintf(stderr, "frsim: status on http://%s/status, metrics on http://%s/metrics\n", bound, bound)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail("%v", err)
		}
	}
	r := frfc.RunLive(spec, *load, obs, st)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail("%v", err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail("%v", err)
		}
		if err := f.Close(); err != nil {
			return fail("%v", err)
		}
	}

	sum := summary{
		Config:    spec.Name(),
		Wiring:    *wiring,
		PktLen:    *pktLen,
		Radix:     *radix,
		Seed:      *seed,
		Pattern:   *pattern,
		Routing:   *routing,
		Scenario:  scn,
		BER:       *ber,
		Chaos:     *chaos,
		ChaosSeed: *chaosSeed,
		Result:    r,
	}
	writeTo := func(path string, write func(io.Writer) error) (ok bool) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(stderr, "frsim:", err)
			return false
		}
		if err := write(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "frsim:", err)
			return false
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "frsim:", err)
			return false
		}
		return true
	}
	if *metricsOut != "" {
		if !writeTo(*metricsOut, obs.WriteMetricsJSON) {
			return 2
		}
		sum.MetricsPath = *metricsOut
	}
	if *heatmap != "" {
		sum.OccupancyCSVPath = *heatmap + "-occupancy.csv"
		sum.UtilizationCSVPath = *heatmap + "-utilization.csv"
		if !writeTo(sum.OccupancyCSVPath, obs.WriteOccupancyCSV) ||
			!writeTo(sum.UtilizationCSVPath, obs.WriteUtilizationCSV) {
			return 2
		}
	}
	if *seriesOut != "" {
		write := obs.WriteTimeSeriesCSV
		if strings.HasSuffix(*seriesOut, ".json") {
			write = obs.WriteTimeSeriesJSON
		}
		if !writeTo(*seriesOut, write) {
			return 2
		}
		sum.TimeSeriesPath = *seriesOut
		sum.TimeSeriesPoints, sum.TimeSeriesDropped = obs.TimeSeriesLen()
	}
	if *profileOut != "" {
		if !writeTo(*profileOut, obs.WriteProfileJSON) {
			return 2
		}
		sum.ProfilePath = *profileOut
	}
	if *idleCSV != "" {
		if !writeTo(*idleCSV, obs.WriteIdleCSV) {
			return 2
		}
		sum.IdleCSVPath = *idleCSV
	}
	if wantProfile {
		sum.ProfileSummary = obs.ProfileSummary()
	}
	if wantWaterfall {
		write := obs.WriteWaterfallJSON
		if strings.HasSuffix(*wfOut, ".csv") {
			write = obs.WriteWaterfallCSV
		}
		if !writeTo(*wfOut, write) {
			return 2
		}
		sum.WaterfallPath = *wfOut
		sum.WaterfallSummary = obs.WaterfallSummary()
	}
	if *traceOut != "" {
		ok := writeTo(*traceOut, func(w io.Writer) error {
			return obs.WriteTrace(w, frfc.TraceFilter{
				Node:   *traceNode,
				Packet: *tracePkt,
				From:   *traceFrom,
				To:     *traceTo,
			})
		})
		if !ok {
			return 2
		}
		sum.TracePath = *traceOut
		sum.TraceEvents, sum.TraceDropped = obs.TraceEventCount()
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return fail("%v", err)
		}
		return 0
	}

	fmt.Fprintf(stdout, "config        %s (%s wiring, %d-flit packets, %dx%d mesh)\n", spec.Name(), *wiring, *pktLen, *radix, *radix)
	fmt.Fprintf(stdout, "offered load  %.1f%% of capacity (effective %.1f%% after bandwidth overhead)\n", r.Load*100, r.EffectiveLoad*100)
	if r.Batches > 0 {
		fmt.Fprintf(stdout, "avg latency   %.2f cycles (95%% CI ±%.2f batch-means over %d batches, ±%.2f i.i.d.; min %d, max %d)\n",
			r.AvgLatency, r.BatchCI95, r.Batches, r.CI95, r.MinLatency, r.MaxLatency)
	} else {
		fmt.Fprintf(stdout, "avg latency   %.2f cycles (95%% CI ±%.2f, min %d, max %d)\n", r.AvgLatency, r.CI95, r.MinLatency, r.MaxLatency)
	}
	if r.CISuspect {
		fmt.Fprintf(stdout, "note          latency samples are autocorrelated (lag-1 r=%.2f); trust the batch-means interval\n", r.Lag1Autocorr)
	}
	fmt.Fprintf(stdout, "percentiles   p50 %d, p95 %d, p99 %d cycles\n", r.P50, r.P95, r.P99)
	fmt.Fprintf(stdout, "decomposition %.2f cycles source queueing + %.2f cycles network\n", r.AvgQueueDelay, r.AvgLatency-r.AvgQueueDelay)
	fmt.Fprintf(stdout, "accepted      %.1f%% of capacity\n", r.AcceptedLoad*100)
	fmt.Fprintf(stdout, "sample        %d/%d packets delivered over %d cycles\n", r.SampledDelivered, r.SampleSize, r.Cycles)
	fmt.Fprintf(stdout, "pool full     %.1f%% of measured cycles (central router)\n", r.PoolFullFraction*100)
	if scn != "" {
		fmt.Fprintf(stdout, "scenario      %s\n", scn)
		fmt.Fprintf(stdout, "degradation   %.1f%% of resolved packets delivered, %d unreachable, %d flits dropped, %d retried, %d abandoned\n",
			r.DeliveredFraction*100, r.UnreachablePackets, r.DroppedFlits, r.RetriedPackets, r.AbandonedPackets)
	}
	if *chaos > 0 {
		fmt.Fprintf(stdout, "chaos         intensity %.2f (seed %d): %.1f%% of resolved packets delivered, %d unreachable, %d retried, %d abandoned\n",
			*chaos, *chaosSeed, r.DeliveredFraction*100, r.UnreachablePackets, r.RetriedPackets, r.AbandonedPackets)
	}
	if *ber > 0 || *chaos > 0 {
		fmt.Fprintf(stdout, "integrity     %d flits corrupted, %d caught by hop CRC, %d escaped to destination, %d phantom reservations, %d slots reclaimed\n",
			r.CorruptedFlits, r.CrcDetected, r.CorruptEscapes, r.PhantomReservations, r.ReclaimedSlots)
	}
	if r.Saturated {
		fmt.Fprintln(stdout, "status        SATURATED — offered load exceeds sustainable throughput")
	}
	if r.WarmupUnstable {
		fmt.Fprintln(stdout, "status        WARMUP-UNSTABLE — warm-up hit its cycle cap before queues settled; treat measurements with care")
	}
	if wantProfile {
		fmt.Fprintf(stdout, "profile       %s\n", sum.ProfileSummary)
		for _, h := range obs.HottestRouters(3) {
			fmt.Fprintf(stdout, "profile hot   router %d at (%d,%d): %.1f%% of ticks active\n",
				h.Node, h.X, h.Y, h.ActiveFraction*100)
		}
	}
	if wantWaterfall {
		fmt.Fprintf(stdout, "waterfall     %s\n", sum.WaterfallSummary)
		fmt.Fprintf(stdout, "waterfall out %s\n", sum.WaterfallPath)
	}
	if sum.MetricsPath != "" {
		fmt.Fprintf(stdout, "metrics       %s\n", sum.MetricsPath)
	}
	if sum.OccupancyCSVPath != "" {
		fmt.Fprintf(stdout, "heatmaps      %s, %s\n", sum.OccupancyCSVPath, sum.UtilizationCSVPath)
	}
	if sum.ProfilePath != "" {
		fmt.Fprintf(stdout, "profile json  %s\n", sum.ProfilePath)
	}
	if sum.IdleCSVPath != "" {
		fmt.Fprintf(stdout, "idle heatmap  %s\n", sum.IdleCSVPath)
	}
	if sum.TracePath != "" {
		fmt.Fprintf(stdout, "trace         %s (%d events buffered, %d overwritten)\n", sum.TracePath, sum.TraceEvents, sum.TraceDropped)
	}
	if sum.TimeSeriesPath != "" {
		fmt.Fprintf(stdout, "timeseries    %s (%d points, %d dropped)\n", sum.TimeSeriesPath, sum.TimeSeriesPoints, sum.TimeSeriesDropped)
	}
	return 0
}

// summary is the -json output: one machine-readable object per run, carrying
// the result plus the paths of every artifact the run wrote.
type summary struct {
	Config             string      `json:"config"`
	Wiring             string      `json:"wiring"`
	PktLen             int         `json:"pktLen"`
	Radix              int         `json:"radix"`
	Seed               uint64      `json:"seed,omitempty"`
	Pattern            string      `json:"pattern"`
	Routing            string      `json:"routing,omitempty"`
	Scenario           string      `json:"scenario,omitempty"`
	BER                float64     `json:"ber,omitempty"`
	Chaos              float64     `json:"chaos,omitempty"`
	ChaosSeed          uint64      `json:"chaosSeed,omitempty"`
	Result             frfc.Result `json:"result"`
	MetricsPath        string      `json:"metricsPath,omitempty"`
	OccupancyCSVPath   string      `json:"occupancyCsvPath,omitempty"`
	UtilizationCSVPath string      `json:"utilizationCsvPath,omitempty"`
	TracePath          string      `json:"tracePath,omitempty"`
	TraceEvents        int         `json:"traceEvents,omitempty"`
	TraceDropped       uint64      `json:"traceDropped,omitempty"`
	TimeSeriesPath     string      `json:"timeSeriesPath,omitempty"`
	TimeSeriesPoints   int         `json:"timeSeriesPoints,omitempty"`
	TimeSeriesDropped  int64       `json:"timeSeriesDropped,omitempty"`
	ProfilePath        string      `json:"profilePath,omitempty"`
	IdleCSVPath        string      `json:"idleCsvPath,omitempty"`
	ProfileSummary     string      `json:"profileSummary,omitempty"`
	WaterfallPath      string      `json:"waterfallPath,omitempty"`
	WaterfallSummary   string      `json:"waterfallSummary,omitempty"`
}

// scenarioOf merges the -scenario grammar with the -fail-link/-fail-router
// shorthands into one schedule string.
func scenarioOf(scenario, failLink string, failRouter int, failAt, recoverAt int64) (string, error) {
	var parts []string
	if scenario != "" {
		parts = append(parts, scenario)
	}
	if failLink != "" {
		parts = append(parts, fmt.Sprintf("down %s @%d", failLink, failAt))
		if recoverAt > 0 {
			parts = append(parts, fmt.Sprintf("up %s @%d", failLink, recoverAt))
		}
	} else if recoverAt > 0 {
		return "", fmt.Errorf("-recover-at needs -fail-link")
	}
	if failRouter >= 0 {
		parts = append(parts, fmt.Sprintf("kill %d @%d", failRouter, failAt))
	}
	return strings.Join(parts, "; "), nil
}

func wiringOf(s string) (frfc.Wiring, error) {
	switch s {
	case "fast":
		return frfc.FastControl, nil
	case "leading":
		return frfc.LeadingControl, nil
	default:
		return "", fmt.Errorf("unknown wiring %q (want fast or leading)", s)
	}
}

func leadFor(w frfc.Wiring, lead int) int {
	if w == frfc.LeadingControl {
		return lead
	}
	return 0
}

func named(name string, w frfc.Wiring, lead, pktLen int) (frfc.Spec, error) {
	switch name {
	case "FR6":
		if w == frfc.LeadingControl {
			return frfc.FRLead(lead, pktLen), nil
		}
		return frfc.FR6(w, pktLen), nil
	case "FR13":
		return frfc.FR13(w, pktLen), nil
	case "VC8":
		return frfc.VC8(w, pktLen), nil
	case "VC16":
		return frfc.VC16(w, pktLen), nil
	case "VC32":
		return frfc.VC32(w, pktLen), nil
	default:
		return frfc.Spec{}, fmt.Errorf("unknown config %q (want FR6, FR13, VC8, VC16, VC32)", name)
	}
}
