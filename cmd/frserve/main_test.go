package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testDaemon starts a daemon on an ephemeral port over a fresh database
// directory and tears it down with the test.
func testDaemon(t *testing.T, dbDir, reportPath string) *daemon {
	t.Helper()
	d, err := start(config{
		addr:    "127.0.0.1:0",
		dbDir:   dbDir,
		workers: 2,
		report:  reportPath,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.shutdown(10 * time.Second) }) //nolint:errcheck // double shutdown in happy paths
	return d
}

func doJSON(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// campaignJSON is the subset of the campaign view the test asserts on.
type campaignJSON struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Jobs      int    `json:"jobs"`
	Done      int    `json:"done"`
	Simulated int    `json:"simulated"`
	Cached    int    `json:"cached"`
	Failed    int    `json:"failed"`
}

func submit(t *testing.T, base, body string) campaignJSON {
	t.Helper()
	code, b := doJSON(t, "POST", base+"/campaigns", body)
	if code != http.StatusCreated {
		t.Fatalf("POST /campaigns = %d: %s", code, b)
	}
	var c campaignJSON
	if err := json.Unmarshal(b, &c); err != nil {
		t.Fatalf("bad campaign JSON: %v\n%s", err, b)
	}
	return c
}

func results(t *testing.T, base, id string) []byte {
	t.Helper()
	code, b := doJSON(t, "GET", base+"/campaigns/"+id+"/results?wait=1", "")
	if code != http.StatusOK {
		t.Fatalf("GET results = %d: %s", code, b)
	}
	return b
}

// TestDaemonEndToEnd drives the full lifecycle over HTTP: submit a small
// sweep, wait for completion, fetch the result stream, resubmit and observe
// 100% dedup, restart the daemon over the same database and observe the
// results survive, and check /status and the regenerated report along the way.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dbDir := filepath.Join(dir, "db")
	reportPath := filepath.Join(dir, "BENCHMARK.md")
	d := testDaemon(t, dbDir, reportPath)
	base := "http://" + d.addr()

	body := `{"name":"e2e","configs":["FR6","VC8"],"from":0.2,"to":0.4,"step":0.2,"sample":150,"warmup":300}`
	c := submit(t, base, body)
	if c.Jobs != 4 || c.ID == "" {
		t.Fatalf("campaign = %+v, want 4 jobs (2 configs x 2 loads)", c)
	}

	first := results(t, base, c.ID)
	lines := bytes.Count(first, []byte("\n"))
	if lines != 4 {
		t.Fatalf("results has %d lines, want 4:\n%s", lines, first)
	}

	// The detail view must show every job simulated, none cached or failed.
	code, b := doJSON(t, "GET", base+"/campaigns/"+c.ID, "")
	if code != http.StatusOK {
		t.Fatalf("GET campaign = %d: %s", code, b)
	}
	var detail campaignJSON
	if err := json.Unmarshal(b, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.State != "done" || detail.Simulated != 4 || detail.Cached != 0 || detail.Failed != 0 {
		t.Fatalf("after first run: %+v", detail)
	}

	// Resubmitting the identical campaign must resolve entirely from the
	// dedup store — zero new executions — and stream byte-identical results.
	c2 := submit(t, base, body)
	second := results(t, base, c2.ID)
	if !bytes.Equal(first, second) {
		t.Fatalf("resubmitted results differ:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	_, b = doJSON(t, "GET", base+"/campaigns/"+c2.ID, "")
	if err := json.Unmarshal(b, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Simulated != 0 || detail.Cached != 4 {
		t.Fatalf("resubmission executed jobs: %+v", detail)
	}

	// /status carries the service section with the dedup ledger.
	_, b = doJSON(t, "GET", base+"/status", "")
	var snap struct {
		Service *struct {
			Campaigns int   `json:"campaigns"`
			DedupHits int64 `json:"dedupHits"`
			DBEntries int   `json:"dbEntries"`
		} `json:"service"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, b)
	}
	if snap.Service == nil || snap.Service.Campaigns != 2 || snap.Service.DedupHits < 4 || snap.Service.DBEntries != 4 {
		t.Fatalf("service status wrong: %s", b)
	}
	_, b = doJSON(t, "GET", base+"/metrics", "")
	if !strings.Contains(string(b), "frfc_service_dedup_hits_total") ||
		!strings.Contains(string(b), `frfc_campaign_jobs{campaign="c1"`) {
		t.Fatalf("/metrics missing service gauges:\n%s", b)
	}

	// Graceful shutdown, then a fresh daemon over the same database: the
	// resubmitted campaign must again be served entirely from disk.
	if err := d.shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The reporter ran at least once before shutdown drained it.
	rep, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(rep), "# Benchmark Report") || !strings.Contains(string(rep), "4 points") {
		t.Fatalf("report content wrong:\n%s", rep)
	}

	d2 := testDaemon(t, dbDir, "")
	base2 := "http://" + d2.addr()
	c3 := submit(t, base2, body)
	third := results(t, base2, c3.ID)
	if !bytes.Equal(first, third) {
		t.Fatalf("post-restart results differ from original")
	}
	_, b = doJSON(t, "GET", base2+"/campaigns/"+c3.ID, "")
	if err := json.Unmarshal(b, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Simulated != 0 || detail.Cached != 4 {
		t.Fatalf("restart re-executed jobs: %+v", detail)
	}
	if err := d2.shutdown(10 * time.Second); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestDaemonValidation checks the API's error envelope.
func TestDaemonValidation(t *testing.T) {
	d := testDaemon(t, t.TempDir(), "")
	base := "http://" + d.addr()

	for _, bad := range []string{
		`{`,
		`{"configs":[]}`,
		`{"configs":["NOPE"],"loads":[0.2]}`,
		`{"configs":["FR6"],"loads":[0.2],"sample":100}`,
		`{"configs":["FR6"],"loads":[0.2],"bogus":1}`,
	} {
		code, b := doJSON(t, "POST", base+"/campaigns", bad)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400 (%s)", bad, code, b)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error envelope missing: %s", bad, b)
		}
	}
	if code, _ := doJSON(t, "GET", base+"/campaigns/c99", ""); code != http.StatusNotFound {
		t.Errorf("GET missing campaign = %d, want 404", code)
	}
	if code, _ := doJSON(t, "DELETE", base+"/campaigns/c99", ""); code != http.StatusNotFound {
		t.Errorf("DELETE missing campaign = %d, want 404", code)
	}

	code, b := doJSON(t, "GET", base+"/campaigns", "")
	if code != http.StatusOK || strings.TrimSpace(string(b)) != "[]" {
		// No campaigns submitted; the listing must be an empty array.
		var list []campaignJSON
		if err := json.Unmarshal(b, &list); err != nil || len(list) != 0 {
			t.Errorf("GET /campaigns = %d %s", code, b)
		}
	}
}
