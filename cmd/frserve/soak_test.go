package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/iofault"
	"frfc/internal/service"
)

// The kill-9 recovery soak: a real frserve process is murdered with SIGKILL
// at seeded fsync boundaries, over and over, and every recovery must uphold
// the store's durability contract:
//
//   - every result fsynced before the kill is present after replay
//   - the index never corrupts: zero quarantined lines, every surviving line
//     byte-identical to the reference store
//   - resubmitting the campaign re-executes only what was never synced —
//     survivors resolve as dedup hits
//
// The schedule is deterministic (iofault.SeededSync), so a failure reproduces
// exactly. The child is this same test binary re-executed with
// FRSERVE_SOAK_CHILD=1, running the real daemon over a fault-injected
// filesystem whose kill fault delivers a genuine SIGKILL — no deferred
// cleanup, no flush, the real thing.

// soakLoads and soakSeed pin the campaign the soak resubmits every cycle.
var soakLoads = []float64{0.2, 0.24, 0.28, 0.32, 0.36, 0.4}

const soakSeed = 1234

func soakBody() string {
	parts := make([]string, len(soakLoads))
	for i, l := range soakLoads {
		parts[i] = fmt.Sprintf("%g", l)
	}
	return fmt.Sprintf(`{"name":"soak","configs":["FR6"],"loads":[%s],"sample":150,"warmup":300,"seed":%d}`,
		strings.Join(parts, ","), soakSeed)
}

// soakReference computes, in-process, the exact store lines the campaign
// produces — the byte-level truth every surviving segment line is checked
// against. Mirrors SweepRequest.jobs() for this request shape.
func soakReference(t *testing.T) (lines map[string]bool, ordered []byte) {
	t.Helper()
	spec := experiment.FR6(experiment.FastControl, 5).Scaled(150, 300)
	spec.Seed = soakSeed
	lines = make(map[string]bool, len(soakLoads))
	var buf bytes.Buffer
	for _, l := range soakLoads {
		j := harness.Job{Spec: spec, Load: l}
		res := experiment.Run(spec, l)
		line, err := harness.MarshalEntry(j, j.Hash(), res)
		if err != nil {
			t.Fatal(err)
		}
		lines[string(line)] = true
		buf.Write(append(line, '\n'))
	}
	return lines, buf.Bytes()
}

// TestSoakChild is the re-exec target, not a test: under FRSERVE_SOAK_CHILD
// it becomes a real frserve daemon over a fault-injected filesystem and
// serves until the injected SIGKILL (or the parent's) takes it down.
func TestSoakChild(t *testing.T) {
	if os.Getenv("FRSERVE_SOAK_CHILD") != "1" {
		t.Skip("re-exec target for the kill-9 soak")
	}
	run([]string{
		"-addr", "127.0.0.1:0",
		"-db", os.Getenv("FRSERVE_SOAK_DB"),
		"-workers", "2",
		"-iofault", os.Getenv("FRSERVE_SOAK_PLAN"),
	}, os.Stderr)
	// Only reachable when the kill boundary was never hit (campaign fully
	// synced first); the parent SIGKILLs us. Block rather than exit so the
	// test framework doesn't report a pass for a process meant to die.
	select {}
}

var apiLine = regexp.MustCompile(`API on http://([^/]+)/campaigns`)

// spawnSoakChild re-execs the test binary as a fault-injected daemon and
// returns the child plus its scraped listen address.
func spawnSoakChild(t *testing.T, dbDir, plan string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestSoakChild$")
	cmd.Env = append(os.Environ(),
		"FRSERVE_SOAK_CHILD=1",
		"FRSERVE_SOAK_DB="+dbDir,
		"FRSERVE_SOAK_PLAN="+plan,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := apiLine.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck // already failing
		cmd.Wait()         //nolint:errcheck
		t.Fatalf("child daemon never announced its API (plan %q)", plan)
		return nil, ""
	}
}

// TestKillNineRecoverySoak is the tentpole soak. 20 seeded cycles: start a
// real daemon over the shared database, submit the campaign, let the
// injected SIGKILL land at that cycle's fsync boundary, then replay the
// survivors and hold them to the durability contract. A final clean daemon
// finishes the campaign purely from dedup plus the unsynced remainder, and
// offline compaction squeezes the kill-littered segments into one.
func TestKillNineRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not short")
	}
	refLines, refStream := soakReference(t)
	dbDir := filepath.Join(t.TempDir(), "db")
	client := &http.Client{Timeout: 60 * time.Second}

	const cycles = 20
	// Every Put under FsyncAlways costs two syncs (data, sidecar); the first
	// cycle performs at most 2*len(soakLoads). Seeding inside that range
	// makes early cycles die mid-campaign; later cycles, running mostly on
	// dedup hits, sync less and often outlive their fault — the parent's
	// SIGKILL covers those.
	maxSync := int64(2 * len(soakLoads))
	prevEntries := 0
	killedByFault := 0
	for cycle := 0; cycle < cycles; cycle++ {
		fault := iofault.SeededSync(uint64(cycle)+77, maxSync, true)
		cmd, addr := spawnSoakChild(t, dbDir, fault.String())

		// Drive the campaign; the child may die mid-request, which is the
		// point — both calls tolerate transport errors.
		resp, err := client.Post("http://"+addr+"/campaigns", "application/json",
			strings.NewReader(soakBody()))
		var campID string
		if err == nil {
			var c struct {
				ID string `json:"id"`
			}
			json.NewDecoder(resp.Body).Decode(&c) //nolint:errcheck // child may vanish mid-body
			resp.Body.Close()
			campID = c.ID
		}
		if campID != "" {
			if resp, err := client.Get("http://" + addr + "/campaigns/" + campID + "/results?wait=1"); err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
		// Either the fault killed it or the campaign fully synced: finish it.
		cmd.Process.Kill() //nolint:errcheck // may already be dead
		err = cmd.Wait()
		if err != nil && strings.Contains(err.Error(), "signal: killed") {
			killedByFault++ // counts parent kills too; only the sum matters
		}

		// Recovery: replay the survivors over the real filesystem.
		db, err := service.OpenDB(dbDir, service.DBOptions{})
		if err != nil {
			t.Fatalf("cycle %d (fault %q): reopen: %v", cycle, fault, err)
		}
		st := db.Stats()
		if st.Quarantined != 0 {
			t.Fatalf("cycle %d (fault %q): %d quarantined lines after a sync-boundary kill",
				cycle, fault, st.Quarantined)
		}
		if st.Entries < prevEntries {
			t.Fatalf("cycle %d (fault %q): entries %d < %d — a previously fsynced result vanished",
				cycle, fault, st.Entries, prevEntries)
		}
		var snap bytes.Buffer
		if err := db.Snapshot(&snap); err != nil {
			t.Fatalf("cycle %d: snapshot: %v", cycle, err)
		}
		for _, line := range bytes.Split(bytes.TrimRight(snap.Bytes(), "\n"), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if !refLines[string(line)] {
				t.Fatalf("cycle %d (fault %q): surviving line is not byte-identical to the reference:\n%s",
					cycle, fault, line)
			}
		}
		prevEntries = st.Entries
		db.Close()
	}
	t.Logf("soak: %d cycles, %d ended in SIGKILL, %d/%d results durable going into the clean run",
		cycles, killedByFault, prevEntries, len(soakLoads))

	// Clean daemon over the battle-scarred database: the resubmission must
	// resolve every survivor from dedup, execute only the remainder, and
	// stream results byte-identical to the reference.
	d := testDaemon(t, dbDir, "")
	base := "http://" + d.addr()
	c := submit(t, base, soakBody())
	stream := results(t, base, c.ID)
	if !bytes.Equal(stream, refStream) {
		t.Fatalf("post-soak results differ from reference:\ngot:\n%s\nwant:\n%s", stream, refStream)
	}
	_, b := doJSON(t, "GET", base+"/campaigns/"+c.ID, "")
	var detail campaignJSON
	if err := json.Unmarshal(b, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Cached != prevEntries || detail.Simulated != len(soakLoads)-prevEntries {
		t.Fatalf("resubmission executed the wrong jobs: cached=%d simulated=%d, want %d/%d",
			detail.Cached, detail.Simulated, prevEntries, len(soakLoads)-prevEntries)
	}
	if err := d.shutdown(10 * time.Second); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	// Offline compaction through the CLI path squeezes the kill-littered
	// directory to one segment without losing an entry.
	var cerr bytes.Buffer
	if code := run([]string{"-db", dbDir, "-compact"}, &cerr); code != 0 {
		t.Fatalf("frserve -compact exited %d:\n%s", code, cerr.String())
	}
	db, err := service.OpenDB(dbDir, service.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st := db.Stats()
	if st.Entries != len(soakLoads) || st.Segments != 1 || st.Quarantined != 0 || st.Healed != 0 {
		t.Fatalf("post-compact stats: %+v, want %d entries in 1 clean segment", st, len(soakLoads))
	}
}
