// Command frserve is the campaign service daemon: a long-running HTTP server
// that accepts sweep submissions, schedules their jobs fairly over one shared
// worker pool, dedups completed work through a persistent on-disk result
// database, and reports progress on /status and /metrics.
//
// The REST API (see docs/service.md):
//
//	POST   /campaigns               submit a sweep (JSON body), returns the campaign
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          one campaign with per-job rows
//	GET    /campaigns/{id}/results  completed results as JSONL store lines (?wait=1 blocks)
//	DELETE /campaigns/{id}          cancel cooperatively
//	GET    /healthz                 liveness (always 200)
//	GET    /readyz                  readiness (503 once draining)
//
// Results are durable: the database under -db survives restarts, and a
// resubmitted campaign resolves every already-completed job from it without
// re-executing. SIGINT/SIGTERM shut the daemon down gracefully: readiness
// flips first so load balancers route away, then the listener closes and the
// worker pool drains.
//
// Admission control (-max-campaigns, -max-queued-jobs, -max-jobs-per-campaign,
// -max-body-bytes, -rate/-burst) bounds what the daemon accepts; everything
// over the envelope is rejected fast with 429/503 instead of degrading
// everyone. -fsync picks the durability policy; docs/service.md has the
// measured cost of each rung.
//
// Usage:
//
//	frserve -addr 127.0.0.1:8080 -db ./frdb -workers 8 -report out/BENCHMARK.md
//	frserve -db ./frdb -compact        # offline: merge segments, drop stale duplicates
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"frfc/internal/iofault"
	"frfc/internal/service"
	"frfc/internal/status"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// config is the daemon's parsed command line.
type config struct {
	addr            string
	dbDir           string
	workers         int
	timeout         time.Duration
	report          string
	segmentBytes    int64
	shutdownTimeout time.Duration

	// admission-control envelope
	limits     service.Limits
	stuckAfter time.Duration

	// durability policy: -fsync always|batch|off plus batch tuning
	fsyncMode     string
	fsyncBatch    int
	fsyncInterval time.Duration

	// protective HTTP timeouts
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration

	// iofaultPlan arms a deterministic fault-injection plan under the
	// database — the kill-9 soak's lever. Empty means the real filesystem.
	iofaultPlan string
	// compact runs offline compaction instead of serving.
	compact bool
}

// dbOptions assembles the database options the config describes.
func (cfg config) dbOptions() (service.DBOptions, error) {
	mode, err := service.ParseFsyncMode(cfg.fsyncMode)
	if err != nil {
		return service.DBOptions{}, err
	}
	o := service.DBOptions{
		SegmentBytes: cfg.segmentBytes,
		Fsync: service.FsyncPolicy{
			Mode: mode, BatchPuts: cfg.fsyncBatch, BatchInterval: cfg.fsyncInterval,
		},
	}
	if cfg.iofaultPlan != "" {
		plan, err := iofault.ParsePlan(cfg.iofaultPlan)
		if err != nil {
			return service.DBOptions{}, err
		}
		in, err := iofault.New(plan...)
		if err != nil {
			return service.DBOptions{}, err
		}
		o.FS = in
	}
	return o, nil
}

// daemon bundles the running pieces so start/shutdown are testable without a
// process boundary.
type daemon struct {
	cfg config
	db  *service.DB
	st  *status.Server
	svc *service.Service
	rep *service.Reporter

	stop    sync.Once
	stopErr error
}

// start opens the database, spawns the service's worker pool, mounts the
// REST API next to /status and /metrics on one listener, and (when
// configured) arms the background reporter.
func start(cfg config, stderr io.Writer) (*daemon, error) {
	dbo, err := cfg.dbOptions()
	if err != nil {
		return nil, err
	}
	db, err := service.OpenDB(cfg.dbDir, dbo)
	if err != nil {
		return nil, err
	}
	st, err := status.ServeOpts(cfg.addr, status.ServerOptions{
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	d := &daemon{cfg: cfg, db: db, st: st}
	opts := service.Options{
		Workers:    cfg.workers,
		Timeout:    cfg.timeout,
		Status:     st,
		Limits:     cfg.limits,
		StuckAfter: cfg.stuckAfter,
	}
	if cfg.report != "" {
		d.rep = service.NewReporter(db, cfg.report)
		opts.OnCampaignDone = d.rep.Kick
	}
	d.svc = service.New(db, opts)
	d.svc.Mount(st)
	logRecovery(stderr, db.Stats(), cfg.dbDir)
	return d, nil
}

// logRecovery reports what replay found under the database directory:
// entries recovered, torn tails healed, corrupt lines quarantined.
func logRecovery(stderr io.Writer, s service.DBStats, dir string) {
	if s.Entries == 0 && s.Healed == 0 && s.Quarantined == 0 {
		return
	}
	fmt.Fprintf(stderr, "frserve: recovered %d results from %d segments under %s", s.Entries, s.Segments, dir)
	if s.Healed > 0 {
		fmt.Fprintf(stderr, " (healed %d torn lines)", s.Healed)
	}
	if s.Quarantined > 0 {
		fmt.Fprintf(stderr, " (quarantined %d corrupt lines — see seg-*.quarantine)", s.Quarantined)
	}
	fmt.Fprintln(stderr)
}

// addr reports the bound listen address (resolved when -addr used port 0).
func (d *daemon) addr() string { return d.st.Addr() }

// shutdown stops the daemon gracefully, in load-balancer-friendly order:
// readiness flips first (/readyz fails, new submissions get 503) while the
// listener still answers, then in-flight requests finish, campaigns are
// cancelled cooperatively and the worker pool drains, any pending report
// render completes, and the database closes. All completed results are
// already durable on disk — resubmitting a campaign after restart resolves
// them as dedup hits. Idempotent; later calls return the first call's error.
func (d *daemon) shutdown(timeout time.Duration) error {
	d.stop.Do(func() {
		d.svc.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		var firstErr error
		if err := d.st.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("http shutdown: %w", err)
		}
		if err := d.svc.Close(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("drain workers: %w", err)
		}
		if d.rep != nil {
			d.rep.Close()
		}
		if err := d.db.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("close db: %w", err)
		}
		d.stopErr = firstErr
	})
	return d.stopErr
}

// runCompact is the offline -compact mode: replay the database (healing torn
// tails and quarantining corrupt lines on the way in), merge every segment
// into one last-write-wins segment, and report what changed.
func runCompact(cfg config, stderr io.Writer) int {
	dbo, err := cfg.dbOptions()
	if err != nil {
		fmt.Fprintf(stderr, "frserve: %v\n", err)
		return 2
	}
	db, err := service.OpenDB(cfg.dbDir, dbo)
	if err != nil {
		fmt.Fprintf(stderr, "frserve: %v\n", err)
		return 2
	}
	before := db.Stats()
	logRecovery(stderr, before, cfg.dbDir)
	if err := db.Compact(); err != nil {
		db.Close()
		fmt.Fprintf(stderr, "frserve: compact: %v\n", err)
		return 1
	}
	if err := db.Close(); err != nil {
		fmt.Fprintf(stderr, "frserve: close db: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "frserve: compacted %s: %d entries, %d segments -> 1\n",
		cfg.dbDir, before.Entries, before.Segments)
	return 0
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("frserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
	fs.StringVar(&cfg.dbDir, "db", "frdb", "result database directory (created if absent; survives restarts)")
	fs.IntVar(&cfg.workers, "workers", 0, "shared worker pool size (0 = NumCPU)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-job execution timeout (0 = none)")
	fs.StringVar(&cfg.report, "report", "", "regenerate this BENCHMARK.md-style report from the database on every campaign completion")
	fs.Int64Var(&cfg.segmentBytes, "segment-bytes", 0, "database segment rotation threshold in bytes (0 = default)")
	fs.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 30*time.Second, "grace period for draining on SIGINT/SIGTERM")

	fs.IntVar(&cfg.limits.MaxCampaigns, "max-campaigns", 0, "cap on concurrently active campaigns (0 = unlimited)")
	fs.IntVar(&cfg.limits.MaxQueuedJobs, "max-queued-jobs", 0, "cap on undispatched jobs across campaigns (0 = unlimited)")
	fs.IntVar(&cfg.limits.MaxJobsPerCampaign, "max-jobs-per-campaign", 0, "cap on one submission's expanded grid (0 = unlimited)")
	fs.Int64Var(&cfg.limits.MaxBodyBytes, "max-body-bytes", 1<<20, "cap on the submit request body in bytes (0 = unlimited)")
	fs.Float64Var(&cfg.limits.RatePerSec, "rate", 0, "per-client submission rate limit in requests/sec (0 = off)")
	fs.IntVar(&cfg.limits.Burst, "burst", 0, "per-client submission burst (0 = 1; only with -rate)")
	fs.DurationVar(&cfg.stuckAfter, "stuck-after", 10*time.Minute, "flag campaigns with work but no progress for this long (0 = off)")

	fs.StringVar(&cfg.fsyncMode, "fsync", "always", "durability policy: always (every Put durable), batch (bounded loss), off (OS decides)")
	fs.IntVar(&cfg.fsyncBatch, "fsync-batch-puts", 0, "with -fsync batch: sync after this many unsynced Puts (0 = 16)")
	fs.DurationVar(&cfg.fsyncInterval, "fsync-batch-interval", 0, "with -fsync batch: sync when the oldest unsynced Put is this old (0 = 100ms)")

	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 0, "HTTP header read timeout (0 = 10s; slowloris defense)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 0, "HTTP full-request read timeout (0 = disabled)")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 0, "HTTP response write timeout (0 = disabled; would cut ?wait=1 long-polls)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 0, "HTTP keep-alive idle timeout (0 = 2m)")

	fs.StringVar(&cfg.iofaultPlan, "iofault", "", `deterministic IO fault plan under the database, e.g. "eio write @3; kill after-sync @5" (testing only)`)
	fs.BoolVar(&cfg.compact, "compact", false, "compact the database offline (merge segments, last write wins) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "frserve: "+format+"\n", a...)
		return 2
	}
	if fs.NArg() > 0 {
		return fail("unexpected arguments: %v", fs.Args())
	}
	if cfg.compact {
		return runCompact(cfg, stderr)
	}

	d, err := start(cfg, stderr)
	if err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "frserve: %d workers, db %s\n", d.svc.Workers(), cfg.dbDir)
	fmt.Fprintf(stderr, "frserve: API on http://%s/campaigns, status on http://%s/status\n", d.addr(), d.addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	fmt.Fprintf(stderr, "frserve: %s, shutting down (grace %s)\n", s, cfg.shutdownTimeout)
	if err := d.shutdown(cfg.shutdownTimeout); err != nil {
		return fail("shutdown: %v", err)
	}
	return 0
}
