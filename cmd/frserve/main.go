// Command frserve is the campaign service daemon: a long-running HTTP server
// that accepts sweep submissions, schedules their jobs fairly over one shared
// worker pool, dedups completed work through a persistent on-disk result
// database, and reports progress on /status and /metrics.
//
// The REST API (see docs/service.md):
//
//	POST   /campaigns               submit a sweep (JSON body), returns the campaign
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          one campaign with per-job rows
//	GET    /campaigns/{id}/results  completed results as JSONL store lines (?wait=1 blocks)
//	DELETE /campaigns/{id}          cancel cooperatively
//
// Results are durable: the database under -db survives restarts, and a
// resubmitted campaign resolves every already-completed job from it without
// re-executing. SIGINT/SIGTERM shut the daemon down gracefully.
//
// Usage:
//
//	frserve -addr 127.0.0.1:8080 -db ./frdb -workers 8 -report out/BENCHMARK.md
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"frfc/internal/service"
	"frfc/internal/status"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// config is the daemon's parsed command line.
type config struct {
	addr            string
	dbDir           string
	workers         int
	timeout         time.Duration
	report          string
	segmentBytes    int64
	shutdownTimeout time.Duration
}

// daemon bundles the running pieces so start/shutdown are testable without a
// process boundary.
type daemon struct {
	cfg config
	db  *service.DB
	st  *status.Server
	svc *service.Service
	rep *service.Reporter

	stop    sync.Once
	stopErr error
}

// start opens the database, spawns the service's worker pool, mounts the
// REST API next to /status and /metrics on one listener, and (when
// configured) arms the background reporter.
func start(cfg config, stderr io.Writer) (*daemon, error) {
	db, err := service.OpenDB(cfg.dbDir, service.DBOptions{SegmentBytes: cfg.segmentBytes})
	if err != nil {
		return nil, err
	}
	st, err := status.Serve(cfg.addr)
	if err != nil {
		db.Close()
		return nil, err
	}
	d := &daemon{cfg: cfg, db: db, st: st}
	opts := service.Options{
		Workers: cfg.workers,
		Timeout: cfg.timeout,
		Status:  st,
	}
	if cfg.report != "" {
		d.rep = service.NewReporter(db, cfg.report)
		opts.OnCampaignDone = d.rep.Kick
	}
	d.svc = service.New(db, opts)
	d.svc.Mount(st)
	if s := db.Stats(); s.Entries > 0 {
		fmt.Fprintf(stderr, "frserve: recovered %d results from %d segments under %s", s.Entries, s.Segments, cfg.dbDir)
		if s.Healed > 0 {
			fmt.Fprintf(stderr, " (healed %d torn lines)", s.Healed)
		}
		fmt.Fprintln(stderr)
	}
	return d, nil
}

// addr reports the bound listen address (resolved when -addr used port 0).
func (d *daemon) addr() string { return d.st.Addr() }

// shutdown stops the daemon gracefully: the listener closes and in-flight
// requests finish, campaigns are cancelled cooperatively and the worker pool
// drains, any pending report render completes, and the database closes. All
// completed results are already durable on disk — resubmitting a campaign
// after restart resolves them as dedup hits. Idempotent; later calls return
// the first call's error.
func (d *daemon) shutdown(timeout time.Duration) error {
	d.stop.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		var firstErr error
		if err := d.st.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("http shutdown: %w", err)
		}
		if err := d.svc.Close(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("drain workers: %w", err)
		}
		if d.rep != nil {
			d.rep.Close()
		}
		if err := d.db.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("close db: %w", err)
		}
		d.stopErr = firstErr
	})
	return d.stopErr
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("frserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
	fs.StringVar(&cfg.dbDir, "db", "frdb", "result database directory (created if absent; survives restarts)")
	fs.IntVar(&cfg.workers, "workers", 0, "shared worker pool size (0 = NumCPU)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-job execution timeout (0 = none)")
	fs.StringVar(&cfg.report, "report", "", "regenerate this BENCHMARK.md-style report from the database on every campaign completion")
	fs.Int64Var(&cfg.segmentBytes, "segment-bytes", 0, "database segment rotation threshold in bytes (0 = default)")
	fs.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 30*time.Second, "grace period for draining on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "frserve: "+format+"\n", a...)
		return 2
	}
	if fs.NArg() > 0 {
		return fail("unexpected arguments: %v", fs.Args())
	}

	d, err := start(cfg, stderr)
	if err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stderr, "frserve: %d workers, db %s\n", d.svc.Workers(), cfg.dbDir)
	fmt.Fprintf(stderr, "frserve: API on http://%s/campaigns, status on http://%s/status\n", d.addr(), d.addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	fmt.Fprintf(stderr, "frserve: %s, shutting down (grace %s)\n", s, cfg.shutdownTimeout)
	if err := d.shutdown(cfg.shutdownTimeout); err != nil {
		return fail("shutdown: %v", err)
	}
	return 0
}
