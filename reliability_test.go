package frfc_test

import (
	"strings"
	"testing"

	"frfc"
)

func TestPublicReliabilitySweep(t *testing.T) {
	pts, err := frfc.ReliabilitySweep(frfc.ReliabilitySweepOptions{Packets: 200, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want the 4 default scenarios", len(pts))
	}
	for _, p := range pts {
		if p.Wedged {
			t.Errorf("%s: watchdog fired", p.Scenario)
		}
		if p.Delivered+p.Abandoned+p.Unreachable != p.Offered {
			t.Errorf("%s: packet fates don't conserve: %+v", p.Scenario, p)
		}
		if p.Abandoned != 0 {
			t.Errorf("%s: %d packets abandoned under hard faults", p.Scenario, p.Abandoned)
		}
	}
	if pts[0].Scenario != "healthy" || pts[0].DeliveredFraction() != 1 {
		t.Errorf("healthy baseline degraded: %+v", pts[0])
	}
	if !strings.Contains(pts[0].String(), "delivered=100.0%") {
		t.Errorf("String() = %q", pts[0].String())
	}
}

func TestPublicReliabilitySweepCustomScenario(t *testing.T) {
	pts, err := frfc.ReliabilitySweep(frfc.ReliabilitySweepOptions{
		Packets: 150,
		Scenarios: []frfc.ReliabilityScenario{
			{Name: "flap", Scenario: "down 5-6 @300; up 5-6 @700"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Scenario != "flap" {
		t.Fatalf("unexpected rows: %+v", pts)
	}
	if pts[0].Delivered != pts[0].Offered {
		t.Errorf("a single repaired link outage must not lose packets: %+v", pts[0])
	}

	if _, err := frfc.ReliabilitySweep(frfc.ReliabilitySweepOptions{
		Scenarios: []frfc.ReliabilityScenario{{Name: "bad", Scenario: "explode 5 @100"}},
	}); err == nil {
		t.Fatal("expected a parse error for a malformed scenario")
	}
}

// TestSpecScenarioRun drives a hard-fault scenario through the public
// Run path: Custom options and the With* chain must agree, the checker-on
// run must deliver its sample, and the scenario columns must be populated.
func TestSpecScenarioRun(t *testing.T) {
	spec, err := frfc.Custom("FR6-outage", frfc.Options{
		FlitReservation: true,
		MeshRadix:       4,
		RetryLimit:      8,
		Routing:         "table",
		Scenario:        "down 5-6 @2500; up 5-6 @4000",
		Check:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.WithSampling(300, 2000)
	res := frfc.Run(spec, 0.3)
	if res.SampledDelivered != res.SampleSize {
		t.Fatalf("sample not fully delivered across the outage: %d/%d", res.SampledDelivered, res.SampleSize)
	}
	if res.DeliveredFraction != 1 {
		t.Errorf("DeliveredFraction = %v, want 1 (mesh stays connected)", res.DeliveredFraction)
	}

	if _, err := frfc.FR6(frfc.FastControl, 5).
		WithRouting("table").
		WithCheck(true).
		WithScenario("down 5-6 @2500; up 5-6 @4000"); err != nil {
		t.Fatal(err)
	}
	if _, err := frfc.FR6(frfc.FastControl, 5).WithScenario("down 5 @2500"); err == nil {
		t.Error("expected a parse error for a scenario without a link pair")
	}
}
