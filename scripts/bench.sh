#!/bin/sh
# Run the repository benchmarks and record the result in benchmarks/latest.txt
# (plus a machine-readable benchmarks/latest.json: name -> ns/op, B/op,
# allocs/op), comparing ns/op against benchmarks/baseline.txt when one exists.
#
# The comparison is a gate, not a report: if any benchmark regresses by more
# than BENCH_MAX_REGRESSION_PCT percent (default 20) against the baseline the
# script exits nonzero. Benchmarks run -benchtime 1x, so single-run jitter is
# real — tune the threshold up for noisy environments rather than ignoring
# the exit status.
#
# Usage:
#   scripts/bench.sh             run every benchmark (paper-scale; slow)
#   scripts/bench.sh -short      analytic + reduced-scale subset (CI smoke)
#   scripts/bench.sh -baseline   promote the latest run to the baseline
#   scripts/bench.sh -profile    also collect pprof profiles into benchmarks/
#                                (cpu.pprof, mem.pprof; inspect with
#                                `go tool pprof benchmarks/cpu.pprof`)
#
# Environment:
#   BENCH_MAX_REGRESSION_PCT     fail threshold, percent ns/op over baseline
#                                (default 20)
set -eu

cd "$(dirname "$0")/.."
mkdir -p benchmarks

if [ "${1:-}" = "-baseline" ]; then
    if [ ! -f benchmarks/latest.txt ]; then
        echo "bench.sh: no benchmarks/latest.txt to promote; run scripts/bench.sh first" >&2
        exit 1
    fi
    cp benchmarks/latest.txt benchmarks/baseline.txt
    echo "baseline updated from latest.txt"
    exit 0
fi

pattern='.'
shortflag=''
profileflags=''
for arg in "$@"; do
    case "$arg" in
    -short)
        # The analytic tables are instant; the storage/bandwidth models are
        # the regression canary that every change to the overhead code must
        # hold. The sweep benchmark guards the harness's parallel speedup and
        # serial/parallel determinism on a reduced grid.
        pattern='Table1|Table2|SweepSerialVsParallel|ProfileDisabledOverhead|WaterfallDisabledOverhead'
        shortflag='-short'
        ;;
    -profile)
        profileflags='-cpuprofile benchmarks/cpu.pprof -memprofile benchmarks/mem.pprof'
        ;;
    *)
        echo "bench.sh: unknown option $arg" >&2
        exit 2
        ;;
    esac
done

go test -run '^$' -bench "$pattern" -benchtime 1x -benchmem $shortflag $profileflags . | tee benchmarks/latest.txt

# Machine-readable twin of latest.txt for tooling (cmd/report reads it):
# one object per benchmark with ns/op and, when -benchmem reported them,
# B/op and allocs/op.
awk '
    BEGIN { print "{" ; n = 0 }
    $1 ~ /^Benchmark/ && $2 ~ /^[0-9]+$/ {
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i < NF; i += 2) {
            if ($(i+1) == "ns/op") ns = $i
            if ($(i+1) == "B/op") bytes = $i
            if ($(i+1) == "allocs/op") allocs = $i
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "  \"%s\": {\"nsPerOp\": %s", $1, ns
        if (bytes != "") printf ", \"bytesPerOp\": %s", bytes
        if (allocs != "") printf ", \"allocsPerOp\": %s", allocs
        printf "}"
    }
    END { if (n) printf "\n"; print "}" }
' benchmarks/latest.txt > benchmarks/latest.json
echo "# machine-readable summary: benchmarks/latest.json"

if [ -n "$profileflags" ]; then
    echo
    echo "# profiles: go tool pprof benchmarks/cpu.pprof | go tool pprof benchmarks/mem.pprof"
fi

if [ -f benchmarks/baseline.txt ]; then
    max="${BENCH_MAX_REGRESSION_PCT:-20}"
    echo
    echo "# vs baseline (ns/op; +/- is latest relative to baseline; fail above +${max}%)"
    awk -v max="$max" '
        FNR == NR {
            if ($2 ~ /^[0-9]+$/ && $4 == "ns/op") base[$1] = $3
            next
        }
        $2 ~ /^[0-9]+$/ && $4 == "ns/op" && ($1 in base) {
            delta = base[$1] > 0 ? ($3 - base[$1]) * 100.0 / base[$1] : 0
            flag = ""
            if (delta > max + 0) { flag = "  REGRESSED"; failed = 1 }
            printf "%-50s %14.0f -> %14.0f  %+6.1f%%%s\n", $1, base[$1], $3, delta, flag
        }
        END {
            if (failed) {
                printf "bench.sh: regression above %s%% threshold (BENCH_MAX_REGRESSION_PCT)\n", max > "/dev/stderr"
                exit 1
            }
        }
    ' benchmarks/baseline.txt benchmarks/latest.txt
fi
