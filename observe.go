package frfc

import (
	"context"
	"io"

	"frfc/internal/experiment"
	"frfc/internal/metrics"
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/timeseries"
	"frfc/internal/trace"
	"frfc/internal/waterfall"
)

// ObserverOptions selects what an Observer collects.
type ObserverOptions struct {
	// Metrics enables the per-router counter registry and occupancy
	// gauges; MetricsEpoch is the gauge sampling period in cycles (0 = a
	// sensible default).
	Metrics      bool
	MetricsEpoch int
	// Trace enables the flit-level event tracer; TraceCapacity bounds the
	// ring buffer in events (0 = a default of ~256k events), keeping the
	// newest when it overflows.
	Trace         bool
	TraceCapacity int
	// TimeSeries enables the per-epoch telemetry recorder: injected and
	// accepted flit rates, running mean latency, reservation hit/miss
	// counts, retries and aggregate buffer occupancy, one point per
	// MetricsEpoch. It implies Metrics (the recorder reads the registry).
	// TimeSeriesCapacity bounds the retained points, dropping the oldest
	// when exceeded; 0 keeps every epoch of the run.
	TimeSeries         bool
	TimeSeriesCapacity int
	// Profile enables simulator self-profiling: per-component activity
	// accounting (total vs. active ticks per router, interface and sink),
	// per-phase work attribution inside the flit-reservation router
	// (reservation scheduling, arbitration, switch traversal, credit
	// handling), and per-epoch host allocation/GC deltas sampled every
	// MetricsEpoch cycles. Observation-only: the Result's shared fields are
	// bit-identical with profiling on or off, and only the deterministic
	// Prof* summary fields are populated from it.
	Profile bool
	// Waterfall enables latency provenance: a per-packet stage ledger
	// decomposes every sampled packet's latency into source queueing,
	// reservation/setup, arbitration, stalls, scheduled residence, wire
	// time and drain, with the components summing exactly to the measured
	// latency. Observation-only: the Result's shared fields are
	// bit-identical with the ledger on or off, and only the deterministic
	// Waterfall* summary fields are populated from it.
	Waterfall bool
}

// Observer collects per-router metrics, flit-level traces and/or a per-epoch
// time series from a run. Create one with NewObserver, pass it to
// RunObserved, then export with the Write methods. A zero-valued or nil
// Observer collects nothing and costs the simulation hot path one nil check
// per event site.
type Observer struct {
	probe  *metrics.Probe
	series *timeseries.Recorder
}

// NewObserver builds an observer per the options. With every option off it
// returns a valid observer that collects nothing.
func NewObserver(o ObserverOptions) *Observer {
	p := &metrics.Probe{}
	if o.Metrics || o.TimeSeries {
		p.Reg = metrics.NewRegistry(sim.Cycle(o.MetricsEpoch))
	}
	if o.Trace {
		p.Tracer = trace.New(o.TraceCapacity)
	}
	if o.Profile {
		p.Prof = profile.NewRegistry(sim.Cycle(o.MetricsEpoch))
	}
	if o.Waterfall {
		p.WF = waterfall.New()
	}
	obs := &Observer{probe: p}
	if o.TimeSeries {
		obs.series = timeseries.New(p.Reg.Epoch, o.TimeSeriesCapacity)
	}
	return obs
}

// instruments bundles the observer's collectors (and an optional live-status
// publisher) for the experiment layer.
func (o *Observer) instruments(st *StatusServer) experiment.Instruments {
	var ins experiment.Instruments
	if o != nil {
		ins.Probe = o.probe
		ins.Series = o.series
	}
	if st != nil {
		ins.Publish = st.srv.OnLive
	}
	return ins
}

// RunObserved is Run with the observer attached to the network for the whole
// simulation. A nil observer makes it identical to Run; instrumentation is
// observation-only, so the Result is bit-identical either way.
func RunObserved(s Spec, load float64, obs *Observer) Result {
	return RunLive(s, load, obs, nil)
}

// RunLive is RunObserved additionally publishing periodic live snapshots —
// run phase, sample progress, a clone of the counter registry — to a status
// server, whose /status and /metrics endpoints then track the run as it
// executes. Either obs or st may be nil. Publishing never perturbs the
// simulation: the Result stays bit-identical to Run.
func RunLive(s Spec, load float64, obs *Observer, st *StatusServer) Result {
	r, _ := experiment.RunInstrumented(context.Background(), s.inner, load, obs.instruments(st))
	return fromInternal(r)
}

// WriteMetricsJSON exports the collected registry as indented JSON. It
// errors when the observer was not collecting metrics.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	if err := o.needMetrics(); err != nil {
		return err
	}
	return o.probe.Reg.WriteJSON(w)
}

// WriteOccupancyCSV exports the k×k mean-buffer-occupancy heatmap (one row
// per mesh row, values in 0..1).
func (o *Observer) WriteOccupancyCSV(w io.Writer) error {
	if err := o.needMetrics(); err != nil {
		return err
	}
	return o.probe.Reg.WriteOccupancyCSV(w)
}

// WriteUtilizationCSV exports the k×k mean-link-utilization heatmap (data
// flits per cycle per direction link).
func (o *Observer) WriteUtilizationCSV(w io.Writer) error {
	if err := o.needMetrics(); err != nil {
		return err
	}
	return o.probe.Reg.WriteUtilizationCSV(w)
}

func (o *Observer) needMetrics() error {
	if o == nil || o.probe == nil || o.probe.Reg == nil {
		return errNoMetrics
	}
	return nil
}

// WriteProfileJSON exports the self-profiling registry as indented JSON:
// per-node per-component tick accounting, per-phase work attribution, and the
// per-epoch memory-sampling summary. It errors when the observer was not
// profiling.
func (o *Observer) WriteProfileJSON(w io.Writer) error {
	if err := o.needProfile(); err != nil {
		return err
	}
	return o.probe.Prof.WriteJSON(w)
}

// WriteIdleCSV exports the k×k idle-fraction heatmap: per node, the fraction
// of router ticks that did no work (values in 0..1, rows = mesh rows).
func (o *Observer) WriteIdleCSV(w io.Writer) error {
	if err := o.needProfile(); err != nil {
		return err
	}
	return o.probe.Prof.WriteIdleCSV(w)
}

// ProfileSummary renders the collected profile as one human-readable line
// (overall idle fraction, per-component breakdown, phase attribution, memory
// per epoch). Empty when the observer was not profiling.
func (o *Observer) ProfileSummary() string {
	if o.needProfile() != nil {
		return ""
	}
	return o.probe.Prof.Summary()
}

// HotRouter is one router's activity ranking from HottestRouters.
type HotRouter struct {
	Node, X, Y     int
	ActiveFraction float64
}

// HottestRouters returns the n routers with the highest active-tick fraction,
// most active first — the hot-path attribution view. Nil when the observer
// was not profiling.
func (o *Observer) HottestRouters(n int) []HotRouter {
	if o.needProfile() != nil {
		return nil
	}
	hot := o.probe.Prof.Hottest(n)
	out := make([]HotRouter, len(hot))
	for i, h := range hot {
		out[i] = HotRouter{Node: h.Node, X: h.X, Y: h.Y, ActiveFraction: h.ActiveFraction}
	}
	return out
}

func (o *Observer) needProfile() error {
	if o == nil || o.probe == nil || o.probe.Prof == nil {
		return errNoProfile
	}
	return nil
}

// WriteWaterfallJSON exports the latency waterfall as indented JSON: per
// stage, the summed cycles, the per-packet mean and share, the batch-means
// 95% confidence interval and exact quantiles. It errors when the observer
// was not collecting a waterfall.
func (o *Observer) WriteWaterfallJSON(w io.Writer) error {
	if err := o.needWaterfall(); err != nil {
		return err
	}
	return o.probe.WF.WriteJSON(w)
}

// WriteWaterfallCSV exports the latency waterfall as CSV, one row per stage
// (stage, packets, cycles, mean, share, ci95, p50, p95, p99, min, max).
func (o *Observer) WriteWaterfallCSV(w io.Writer) error {
	if err := o.needWaterfall(); err != nil {
		return err
	}
	return o.probe.WF.WriteCSV(w)
}

// WaterfallSummary renders the collected waterfall as one human-readable
// line: per-stage mean cycles with shares, summing to the mean measured
// latency. Empty when the observer was not collecting a waterfall.
func (o *Observer) WaterfallSummary() string {
	if o.needWaterfall() != nil {
		return ""
	}
	return o.probe.WF.Summary()
}

func (o *Observer) needWaterfall() error {
	if o == nil || o.probe == nil || o.probe.WF == nil {
		return errNoWaterfall
	}
	return nil
}

// WriteTimeSeriesCSV exports the per-epoch telemetry series as CSV, one row
// per epoch window. The ejected column is the accepted-flit count per window;
// over an unbounded recorder its sum equals the run's total ejected flits. It
// errors when the observer was not recording a time series.
func (o *Observer) WriteTimeSeriesCSV(w io.Writer) error {
	if o == nil || o.series == nil {
		return errNoTimeSeries
	}
	return o.series.WriteCSV(w)
}

// WriteTimeSeriesJSON exports the per-epoch telemetry series as one indented
// JSON object: the epoch length, the dropped-point count (bounded recorders)
// and the points in chronological order.
func (o *Observer) WriteTimeSeriesJSON(w io.Writer) error {
	if o == nil || o.series == nil {
		return errNoTimeSeries
	}
	return o.series.WriteJSON(w)
}

// TimeSeriesLen reports retained points and how many a bounded recorder
// discarded (0 dropped means the whole run is covered).
func (o *Observer) TimeSeriesLen() (points int, dropped int64) {
	if o == nil {
		return 0, 0
	}
	return o.series.Len(), o.series.Dropped()
}

// TraceFilter narrows a trace export.
type TraceFilter struct {
	// Node keeps only events at one router (< 0 = every router).
	Node int
	// Packet keeps only one packet's events (0 = all).
	Packet uint64
	// From and To bound the cycle window, inclusive; To <= 0 leaves it
	// unbounded above.
	From, To int64
}

// AllEvents keeps every traced event.
var AllEvents = TraceFilter{Node: -1}

// WriteTrace exports the collected flit trace as Chrome trace-event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing. It
// errors when the observer was not tracing.
func (o *Observer) WriteTrace(w io.Writer, f TraceFilter) error {
	if o == nil || o.probe == nil || o.probe.Tracer == nil {
		return errNoTrace
	}
	radix := 0
	if o.probe.Reg != nil {
		radix = o.probe.Reg.Radix
	}
	return o.probe.Tracer.WriteChrome(w, radix, trace.Filter{
		Node:   int32(f.Node),
		Packet: f.Packet,
		From:   sim.Cycle(f.From),
		To:     sim.Cycle(f.To),
	})
}

// TraceEventCount reports buffered events and how many were overwritten by
// ring wraparound (0 dropped means the whole run fit).
func (o *Observer) TraceEventCount() (buffered int, dropped uint64) {
	if o == nil || o.probe == nil {
		return 0, 0
	}
	return o.probe.Tracer.Len(), o.probe.Tracer.Dropped()
}

type observeErr string

func (e observeErr) Error() string { return string(e) }

const (
	errNoMetrics    = observeErr("frfc: observer was not collecting metrics (set ObserverOptions.Metrics)")
	errNoTrace      = observeErr("frfc: observer was not tracing (set ObserverOptions.Trace)")
	errNoTimeSeries = observeErr("frfc: observer was not recording a time series (set ObserverOptions.TimeSeries)")
	errNoProfile    = observeErr("frfc: observer was not profiling (set ObserverOptions.Profile)")
	errNoWaterfall  = observeErr("frfc: observer was not collecting a waterfall (set ObserverOptions.Waterfall)")
)
