package frfc

import (
	"io"

	"frfc/internal/experiment"
	"frfc/internal/metrics"
	"frfc/internal/sim"
	"frfc/internal/trace"
)

// ObserverOptions selects what an Observer collects.
type ObserverOptions struct {
	// Metrics enables the per-router counter registry and occupancy
	// gauges; MetricsEpoch is the gauge sampling period in cycles (0 = a
	// sensible default).
	Metrics      bool
	MetricsEpoch int
	// Trace enables the flit-level event tracer; TraceCapacity bounds the
	// ring buffer in events (0 = a default of ~256k events), keeping the
	// newest when it overflows.
	Trace         bool
	TraceCapacity int
}

// Observer collects per-router metrics and/or flit-level traces from a run.
// Create one with NewObserver, pass it to RunObserved, then export with the
// Write methods. A zero-valued or nil Observer collects nothing and costs
// the simulation hot path one nil check per event site.
type Observer struct {
	probe *metrics.Probe
}

// NewObserver builds an observer per the options. With both options off it
// returns a valid observer that collects nothing.
func NewObserver(o ObserverOptions) *Observer {
	p := &metrics.Probe{}
	if o.Metrics {
		p.Reg = metrics.NewRegistry(sim.Cycle(o.MetricsEpoch))
	}
	if o.Trace {
		p.Tracer = trace.New(o.TraceCapacity)
	}
	return &Observer{probe: p}
}

// RunObserved is Run with the observer attached to the network for the whole
// simulation. A nil observer makes it identical to Run.
func RunObserved(s Spec, load float64, obs *Observer) Result {
	var p *metrics.Probe
	if obs != nil {
		p = obs.probe
	}
	return fromInternal(experiment.RunObserved(s.inner, load, p))
}

// WriteMetricsJSON exports the collected registry as indented JSON. It
// errors when the observer was not collecting metrics.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	if err := o.needMetrics(); err != nil {
		return err
	}
	return o.probe.Reg.WriteJSON(w)
}

// WriteOccupancyCSV exports the k×k mean-buffer-occupancy heatmap (one row
// per mesh row, values in 0..1).
func (o *Observer) WriteOccupancyCSV(w io.Writer) error {
	if err := o.needMetrics(); err != nil {
		return err
	}
	return o.probe.Reg.WriteOccupancyCSV(w)
}

// WriteUtilizationCSV exports the k×k mean-link-utilization heatmap (data
// flits per cycle per direction link).
func (o *Observer) WriteUtilizationCSV(w io.Writer) error {
	if err := o.needMetrics(); err != nil {
		return err
	}
	return o.probe.Reg.WriteUtilizationCSV(w)
}

func (o *Observer) needMetrics() error {
	if o == nil || o.probe == nil || o.probe.Reg == nil {
		return errNoMetrics
	}
	return nil
}

// TraceFilter narrows a trace export.
type TraceFilter struct {
	// Node keeps only events at one router (< 0 = every router).
	Node int
	// Packet keeps only one packet's events (0 = all).
	Packet uint64
	// From and To bound the cycle window, inclusive; To <= 0 leaves it
	// unbounded above.
	From, To int64
}

// AllEvents keeps every traced event.
var AllEvents = TraceFilter{Node: -1}

// WriteTrace exports the collected flit trace as Chrome trace-event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing. It
// errors when the observer was not tracing.
func (o *Observer) WriteTrace(w io.Writer, f TraceFilter) error {
	if o == nil || o.probe == nil || o.probe.Tracer == nil {
		return errNoTrace
	}
	radix := 0
	if o.probe.Reg != nil {
		radix = o.probe.Reg.Radix
	}
	return o.probe.Tracer.WriteChrome(w, radix, trace.Filter{
		Node:   int32(f.Node),
		Packet: f.Packet,
		From:   sim.Cycle(f.From),
		To:     sim.Cycle(f.To),
	})
}

// TraceEventCount reports buffered events and how many were overwritten by
// ring wraparound (0 dropped means the whole run fit).
func (o *Observer) TraceEventCount() (buffered int, dropped uint64) {
	if o == nil || o.probe == nil {
		return 0, 0
	}
	return o.probe.Tracer.Len(), o.probe.Tracer.Dropped()
}

type observeErr string

func (e observeErr) Error() string { return string(e) }

const (
	errNoMetrics = observeErr("frfc: observer was not collecting metrics (set ObserverOptions.Metrics)")
	errNoTrace   = observeErr("frfc: observer was not tracing (set ObserverOptions.Trace)")
)
